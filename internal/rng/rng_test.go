package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with same seed diverged at step %d", i)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	r := New(99)
	// Advance to an arbitrary mid-stream point before snapshotting.
	for i := 0; i < 137; i++ {
		r.Uint64()
	}
	state, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(state) != MarshaledSize {
		t.Fatalf("serialized state is %d bytes, want %d", len(state), MarshaledSize)
	}
	// The reference continues from the snapshot point; the restored
	// generator must produce the identical continuation.
	want := make([]uint64, 500)
	for i := range want {
		want[i] = r.Uint64()
	}
	restored := New(0)
	if err := restored.UnmarshalBinary(state); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if got := restored.Uint64(); got != w {
			t.Fatalf("restored stream diverged at step %d: got %d, want %d", i, got, w)
		}
	}
}

func TestUnmarshalRejectsBadState(t *testing.T) {
	r := New(1)
	if err := r.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Fatal("short state accepted")
	}
	good, _ := New(1).MarshalBinary()
	bad := append([]byte(nil), good...)
	bad[0] = 99
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Fatal("unknown version accepted")
	}
	zero := make([]byte, MarshaledSize)
	zero[0] = 1
	if err := r.UnmarshalBinary(zero); err == nil {
		t.Fatal("all-zero state accepted")
	}
	// A failed unmarshal must not clobber the generator.
	before := New(1)
	a, b := before.Uint64(), r.Uint64()
	if a != b {
		t.Fatalf("failed unmarshal corrupted generator state: %d != %d", a, b)
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestNewNamedDistinctStreams(t *testing.T) {
	a := NewNamed(7, "alpha")
	b := NewNamed(7, "beta")
	if a.Uint64() == b.Uint64() {
		t.Fatal("named streams with different names collided on first draw")
	}
	c := NewNamed(7, "alpha")
	a2 := NewNamed(7, "alpha")
	if c.Uint64() != a2.Uint64() {
		t.Fatal("same (seed, name) did not reproduce the stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(9)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("successive splits produced identical children")
	}
}

func TestSplitNamedStable(t *testing.T) {
	p1 := New(5)
	p2 := New(5)
	a := p1.SplitNamed("x")
	b := p2.SplitNamed("x")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("SplitNamed is not a pure function of parent seed and name")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	for n := 1; n <= 33; n++ {
		seen := make(map[int]bool)
		for i := 0; i < 200*n; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) returned %d", n, v)
			}
			seen[v] = true
		}
		if len(seen) != n {
			t.Fatalf("Intn(%d) did not cover all values: %d seen", n, len(seen))
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(23)
	const n = 10
	counts := make([]int, n)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	expected := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Fatalf("value %d count %d deviates from expected %.0f", v, c, expected)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(31)
	n := 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(37)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(0, 0.5); v <= 0 {
			t.Fatalf("LogNormal returned non-positive %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(41)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementProperty(t *testing.T) {
	r := New(43)
	f := func(nRaw, kRaw uint16) bool {
		n := int(nRaw%500) + 1
		k := int(kRaw) % (n + 1)
		s := r.SampleWithoutReplacement(n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacementFullCoverage(t *testing.T) {
	r := New(47)
	s := r.SampleWithoutReplacement(20, 20)
	seen := make([]bool, 20)
	for _, v := range s {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("k==n sample missed index %d", i)
		}
	}
}

func TestSampleWithoutReplacementSmallKUnbiased(t *testing.T) {
	r := New(53)
	counts := make([]int, 100)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, v := range r.SampleWithoutReplacement(100, 3) {
			counts[v]++
		}
	}
	expected := float64(trials*3) / 100
	for v, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("index %d drawn %d times, expected ~%.0f", v, c, expected)
		}
	}
}

func TestChooseWeighted(t *testing.T) {
	r := New(59)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const trials = 40000
	for i := 0; i < trials; i++ {
		counts[r.Choose(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio %v far from 3", ratio)
	}
}

func TestChooseAllZeroUniform(t *testing.T) {
	r := New(61)
	counts := make([]int, 4)
	for i := 0; i < 8000; i++ {
		counts[r.Choose([]float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 1500 || c > 2500 {
			t.Fatalf("all-zero Choose not uniform: index %d count %d", i, c)
		}
	}
}

func TestHash64Stability(t *testing.T) {
	if Hash64("mm/sandybridge") != Hash64("mm/sandybridge") {
		t.Fatal("Hash64 not stable")
	}
	if Hash64("a") == Hash64("b") {
		t.Fatal("Hash64 trivially collided")
	}
}

func TestHashInts64DependsOnAllParts(t *testing.T) {
	a := HashInts64("k", []int{1, 2, 3})
	if a != HashInts64("k", []int{1, 2, 3}) {
		t.Fatal("HashInts64 not stable")
	}
	if a == HashInts64("k2", []int{1, 2, 3}) {
		t.Fatal("HashInts64 ignores tag")
	}
	if a == HashInts64("k", []int{1, 2, 4}) {
		t.Fatal("HashInts64 ignores values")
	}
	if a == HashInts64("k", []int{1, 2}) {
		t.Fatal("HashInts64 ignores length")
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(67)
	vals := []int{5, 5, 7, 9, 9, 9}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	sum2 := 0
	for _, v := range vals {
		sum2 += v
	}
	if sum != sum2 {
		t.Fatal("Shuffle changed the multiset")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkSampleWithoutReplacement(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.SampleWithoutReplacement(100000, 100)
	}
}
