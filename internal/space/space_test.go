package space

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func smallSpace() *Space {
	return New(
		NewIntRange("u", 1, 4),
		NewPowerOfTwo("t", 0, 3),
		NewBoolean("omp"),
		NewCategorical("bcast", "ring", "tree", "2ring"),
	)
}

func TestParamConstructors(t *testing.T) {
	p := NewIntRange("u", 1, 32)
	if p.Levels() != 32 || p.Value(0) != 1 || p.Value(31) != 32 {
		t.Fatalf("IntRange wrong: levels=%d first=%d last=%d", p.Levels(), p.Value(0), p.Value(31))
	}
	q := NewPowerOfTwo("t", 0, 11)
	if q.Levels() != 12 || q.Value(0) != 1 || q.Value(11) != 2048 {
		t.Fatalf("PowerOfTwo wrong: levels=%d", q.Levels())
	}
	b := NewBoolean("f")
	if b.Levels() != 2 || b.Value(0) != 0 || b.Value(1) != 1 {
		t.Fatal("Boolean wrong")
	}
	c := NewCategorical("algo", "a", "b")
	if c.Levels() != 2 || c.Label(1) != "b" {
		t.Fatal("Categorical wrong")
	}
	e := NewExplicit("nb", 32, 64, 128, 256)
	if e.Levels() != 4 || e.Value(2) != 128 {
		t.Fatal("Explicit wrong")
	}
}

func TestParamLevelOf(t *testing.T) {
	p := NewPowerOfTwo("t", 0, 5)
	if p.LevelOf(8) != 3 {
		t.Fatalf("LevelOf(8) = %d, want 3", p.LevelOf(8))
	}
	if p.LevelOf(7) != -1 {
		t.Fatal("LevelOf of absent value should be -1")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate parameter names should panic")
		}
	}()
	New(NewBoolean("x"), NewBoolean("x"))
}

func TestSpaceSize(t *testing.T) {
	s := smallSpace()
	if s.Size() != 4*4*2*3 {
		t.Fatalf("size = %v, want 96", s.Size())
	}
}

func TestValidate(t *testing.T) {
	s := smallSpace()
	if err := s.Validate(Config{0, 0, 0, 0}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := s.Validate(Config{0, 0, 0}); err == nil {
		t.Fatal("short config accepted")
	}
	if err := s.Validate(Config{0, 0, 0, 5}); err == nil {
		t.Fatal("out-of-range level accepted")
	}
	if err := s.Validate(Config{0, 0, 0, -1}); err == nil {
		t.Fatal("negative level accepted")
	}
}

func TestValuesAndLookup(t *testing.T) {
	s := smallSpace()
	c := Config{2, 3, 1, 0}
	vals := s.Values(c)
	want := []int{3, 8, 1, 0}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("Values = %v, want %v", vals, want)
		}
	}
	if v := s.MustValue(c, "t"); v != 8 {
		t.Fatalf("MustValue(t) = %d, want 8", v)
	}
	if _, ok := s.Value(c, "missing"); ok {
		t.Fatal("lookup of missing parameter succeeded")
	}
}

func TestEncodeLogScaleForPow2(t *testing.T) {
	s := smallSpace()
	c := Config{1, 3, 1, 2}
	f := s.Encode(c)
	if f[0] != 2 { // u level 1 -> value 2
		t.Fatalf("int feature = %v", f[0])
	}
	if f[1] != 3 { // t level 3 -> value 8 -> log2 = 3
		t.Fatalf("pow2 feature = %v, want log2(8)=3", f[1])
	}
	if f[2] != 1 {
		t.Fatalf("bool feature = %v", f[2])
	}
	if f[3] != 2 { // categorical encodes as level index
		t.Fatalf("cat feature = %v", f[3])
	}
	names := s.FeatureNames()
	if names[1] != "log2_t" || names[0] != "u" {
		t.Fatalf("feature names = %v", names)
	}
}

func TestConfigKeyUniqueness(t *testing.T) {
	a := Config{1, 2, 3}
	b := Config{1, 23}
	if a.Key() == b.Key() {
		t.Fatal("distinct configs share a key")
	}
	if a.Key() != a.Clone().Key() {
		t.Fatal("clone changed the key")
	}
}

func TestStringRendering(t *testing.T) {
	s := smallSpace()
	got := s.String(Config{0, 0, 1, 1})
	want := "u=1 t=1 omp=on bcast=tree"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestRandomConfigsValidProperty(t *testing.T) {
	s := smallSpace()
	r := rng.New(1)
	f := func(uint8) bool {
		c := s.Random(r)
		return s.Validate(c) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerNoRepeats(t *testing.T) {
	s := smallSpace()
	sm := NewSampler(s, rng.New(2))
	seen := make(map[string]bool)
	count := 0
	for {
		c, ok := sm.Next()
		if !ok {
			break
		}
		k := c.Key()
		if seen[k] {
			t.Fatalf("sampler repeated config %s", k)
		}
		seen[k] = true
		count++
	}
	if count != int(s.Size()) {
		t.Fatalf("sampler exhausted after %d draws, space has %v", count, s.Size())
	}
}

func TestSamplerExcludeRespected(t *testing.T) {
	s := New(NewIntRange("a", 0, 3))
	sm := NewSampler(s, rng.New(3))
	sm.Exclude(Config{2})
	for {
		c, ok := sm.Next()
		if !ok {
			break
		}
		if c[0] == 2 {
			t.Fatal("excluded config was sampled")
		}
	}
}

func TestSamplerUniformFirstDraw(t *testing.T) {
	s := New(NewIntRange("a", 0, 9))
	counts := make([]int, 10)
	for seed := uint64(0); seed < 20000; seed++ {
		sm := NewSampler(s, rng.New(seed))
		c, _ := sm.Next()
		counts[c[0]]++
	}
	for v, c := range counts {
		if c < 1700 || c > 2300 {
			t.Fatalf("first draw not uniform: value %d count %d", v, c)
		}
	}
}

func TestSamplePoolDistinct(t *testing.T) {
	s := smallSpace()
	pool := s.SamplePool(50, rng.New(4))
	if len(pool) != 50 {
		t.Fatalf("pool size = %d", len(pool))
	}
	seen := make(map[string]bool)
	for _, c := range pool {
		if seen[c.Key()] {
			t.Fatal("pool has duplicates")
		}
		seen[c.Key()] = true
	}
}

func TestSamplePoolLargerThanSpace(t *testing.T) {
	s := New(NewBoolean("a"), NewBoolean("b"))
	pool := s.SamplePool(100, rng.New(5))
	if len(pool) != 4 {
		t.Fatalf("pool over tiny space = %d configs, want 4", len(pool))
	}
}

func TestEnumerateCoversSpace(t *testing.T) {
	s := smallSpace()
	all := s.Enumerate()
	if len(all) != int(s.Size()) {
		t.Fatalf("Enumerate returned %d configs, want %v", len(all), s.Size())
	}
	seen := make(map[string]bool)
	for _, c := range all {
		if s.Validate(c) != nil || seen[c.Key()] {
			t.Fatal("Enumerate produced invalid or duplicate config")
		}
		seen[c.Key()] = true
	}
}

func TestNeighbors(t *testing.T) {
	s := New(NewIntRange("a", 0, 2), NewIntRange("b", 0, 2))
	// Corner config has 2 neighbors, center has 4.
	if n := s.Neighbors(Config{0, 0}); len(n) != 2 {
		t.Fatalf("corner neighbors = %d, want 2", len(n))
	}
	if n := s.Neighbors(Config{1, 1}); len(n) != 4 {
		t.Fatalf("center neighbors = %d, want 4", len(n))
	}
	for _, n := range s.Neighbors(Config{1, 1}) {
		if s.Validate(n) != nil {
			t.Fatal("invalid neighbor")
		}
		diff := 0
		if n[0] != 1 {
			diff++
		}
		if n[1] != 1 {
			diff++
		}
		if diff != 1 {
			t.Fatal("neighbor differs in more than one parameter")
		}
	}
}

func TestDefaultIsUntransformed(t *testing.T) {
	s := New(NewIntRange("u", 1, 32), NewPowerOfTwo("t", 0, 11))
	d := s.Default()
	if s.MustValue(d, "u") != 1 || s.MustValue(d, "t") != 1 {
		t.Fatal("default config is not the untransformed variant")
	}
}

func TestHashStability(t *testing.T) {
	c := Config{1, 2, 3}
	if c.Hash("m") != c.Hash("m") {
		t.Fatal("config hash unstable")
	}
	if c.Hash("m") == c.Hash("n") {
		t.Fatal("config hash ignores tag")
	}
}

func TestEncodeRoundtripOrderPreserved(t *testing.T) {
	// Encoding of ordered params must be strictly increasing in level.
	s := New(NewIntRange("u", 1, 8), NewPowerOfTwo("t", 0, 5))
	for pi := 0; pi < s.NumParams(); pi++ {
		prev := math.Inf(-1)
		p := s.Param(pi)
		for lv := 0; lv < p.Levels(); lv++ {
			c := s.Default()
			c[pi] = lv
			f := s.Encode(c)[pi]
			if f <= prev {
				t.Fatalf("encoding not monotone for %s at level %d", p.Name, lv)
			}
			prev = f
		}
	}
}

func TestIncrementIsExhaustive(t *testing.T) {
	s := New(NewIntRange("a", 0, 1), NewIntRange("b", 0, 2))
	c := s.Default()
	count := 1
	for s.increment(c) {
		count++
	}
	if count != 6 {
		t.Fatalf("increment visited %d configs, want 6", count)
	}
}

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{IntRange: "int", PowerOfTwo: "pow2", Boolean: "bool", Categorical: "cat", Kind(9): "Kind(9)"}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestNamesAndIndex(t *testing.T) {
	s := smallSpace()
	names := s.Names()
	if len(names) != 4 || names[0] != "u" || names[3] != "bcast" {
		t.Fatalf("Names = %v", names)
	}
	if s.Index("omp") != 2 || s.Index("nope") != -1 {
		t.Fatal("Index wrong")
	}
	sorted := s.SortedNames()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			t.Fatal("SortedNames not sorted")
		}
	}
}

func TestSamplerDrawn(t *testing.T) {
	s := smallSpace()
	sm := NewSampler(s, rng.New(9))
	if sm.Drawn() != 0 {
		t.Fatal("fresh sampler drawn != 0")
	}
	sm.Next()
	sm.Next()
	if sm.Drawn() != 2 {
		t.Fatalf("Drawn = %d", sm.Drawn())
	}
}

func TestMustValuePanicsOnUnknown(t *testing.T) {
	s := smallSpace()
	defer func() {
		if recover() == nil {
			t.Fatal("MustValue of unknown parameter did not panic")
		}
	}()
	s.MustValue(s.Default(), "ghost")
}

func TestExplicitParamPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty explicit value list accepted")
		}
	}()
	NewExplicit("x")
}
