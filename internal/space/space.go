// Package space models the discrete configuration spaces that autotuning
// searches over: typed tunable parameters, configurations, encoding into
// numeric feature vectors for the surrogate model, and uniform sampling
// without replacement over spaces far too large to enumerate.
//
// A Config is represented compactly as a slice of level indices, one per
// parameter; Values materializes the actual parameter values. This mirrors
// how Orio and OpenTuner represent points in their search spaces.
package space

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/rng"
)

// Kind describes the semantic type of a tunable parameter. The kind
// determines how the parameter is encoded for the surrogate model.
type Kind int

const (
	// IntRange is a contiguous integer range, e.g. unroll factor 1..32.
	IntRange Kind = iota
	// PowerOfTwo is a value chosen from {2^lo, ..., 2^hi}, e.g. tile sizes.
	PowerOfTwo
	// Boolean is an on/off switch, e.g. a compiler flag.
	Boolean
	// Categorical is an unordered finite set, e.g. a broadcast algorithm.
	Categorical
)

func (k Kind) String() string {
	switch k {
	case IntRange:
		return "int"
	case PowerOfTwo:
		return "pow2"
	case Boolean:
		return "bool"
	case Categorical:
		return "cat"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Param is one tunable parameter: a name plus an ordered list of levels.
type Param struct {
	Name string
	Kind Kind
	// levels holds the concrete integer value of each level. For
	// Categorical parameters the values are indices into Labels.
	levels []int
	// Labels names categorical levels; nil for numeric parameters.
	Labels []string
}

// NewIntRange returns a parameter ranging over lo..hi inclusive with step 1.
func NewIntRange(name string, lo, hi int) Param {
	if hi < lo {
		panic(fmt.Sprintf("space: empty range %d..%d for %s", lo, hi, name))
	}
	levels := make([]int, hi-lo+1)
	for i := range levels {
		levels[i] = lo + i
	}
	return Param{Name: name, Kind: IntRange, levels: levels}
}

// NewPowerOfTwo returns a parameter over {2^loExp, ..., 2^hiExp}.
func NewPowerOfTwo(name string, loExp, hiExp int) Param {
	if hiExp < loExp || loExp < 0 || hiExp > 30 {
		panic(fmt.Sprintf("space: bad power-of-two exponents %d..%d for %s", loExp, hiExp, name))
	}
	levels := make([]int, hiExp-loExp+1)
	for i := range levels {
		levels[i] = 1 << (loExp + i)
	}
	return Param{Name: name, Kind: PowerOfTwo, levels: levels}
}

// NewBoolean returns an on/off parameter encoded as {0, 1}.
func NewBoolean(name string) Param {
	return Param{Name: name, Kind: Boolean, levels: []int{0, 1}}
}

// NewCategorical returns a parameter over the given labels.
func NewCategorical(name string, labels ...string) Param {
	if len(labels) == 0 {
		panic("space: categorical parameter needs at least one label")
	}
	levels := make([]int, len(labels))
	for i := range levels {
		levels[i] = i
	}
	return Param{Name: name, Kind: Categorical, levels: levels, Labels: append([]string(nil), labels...)}
}

// NewExplicit returns an IntRange-kind parameter over an explicit ordered
// value list (used for irregular ranges such as HPL block sizes).
func NewExplicit(name string, values ...int) Param {
	if len(values) == 0 {
		panic("space: explicit parameter needs at least one value")
	}
	return Param{Name: name, Kind: IntRange, levels: append([]int(nil), values...)}
}

// Levels returns the number of levels of the parameter.
func (p Param) Levels() int { return len(p.levels) }

// Value returns the concrete value of the given level index.
func (p Param) Value(level int) int {
	if level < 0 || level >= len(p.levels) {
		panic(fmt.Sprintf("space: level %d out of range for %s (%d levels)", level, p.Name, len(p.levels)))
	}
	return p.levels[level]
}

// LevelOf returns the level index whose value equals v, or -1.
func (p Param) LevelOf(v int) int {
	for i, lv := range p.levels {
		if lv == v {
			return i
		}
	}
	return -1
}

// Label returns a human-readable rendering of the level's value.
func (p Param) Label(level int) string {
	if p.Kind == Categorical {
		return p.Labels[p.Value(level)]
	}
	if p.Kind == Boolean {
		if p.Value(level) == 0 {
			return "off"
		}
		return "on"
	}
	return fmt.Sprintf("%d", p.Value(level))
}

// Space is an ordered collection of parameters defining a search space.
type Space struct {
	params []Param
	byName map[string]int
}

// New constructs a Space from parameters. Parameter names must be unique.
func New(params ...Param) *Space {
	s := &Space{params: append([]Param(nil), params...), byName: make(map[string]int, len(params))}
	for i, p := range s.params {
		if p.Name == "" {
			panic("space: parameter with empty name")
		}
		if _, dup := s.byName[p.Name]; dup {
			panic("space: duplicate parameter name " + p.Name)
		}
		s.byName[p.Name] = i
	}
	return s
}

// NumParams returns the number of tunable parameters.
func (s *Space) NumParams() int { return len(s.params) }

// Param returns the i-th parameter.
func (s *Space) Param(i int) Param { return s.params[i] }

// Names returns the parameter names in order.
func (s *Space) Names() []string {
	names := make([]string, len(s.params))
	for i, p := range s.params {
		names[i] = p.Name
	}
	return names
}

// Index returns the position of the named parameter, or -1.
func (s *Space) Index(name string) int {
	i, ok := s.byName[name]
	if !ok {
		return -1
	}
	return i
}

// Size returns the number of configurations in the space as a float64
// (spaces like ATAX's 2.57e12 overflow int on 32-bit platforms and are
// reported in scientific notation in the paper).
func (s *Space) Size() float64 {
	size := 1.0
	for _, p := range s.params {
		size *= float64(p.Levels())
	}
	return size
}

// Config is a point in a Space: one level index per parameter.
type Config []int

// Clone returns a copy of c.
func (c Config) Clone() Config { return append(Config(nil), c...) }

// Key returns a compact string key identifying the configuration, usable
// as a map key for sampling without replacement.
func (c Config) Key() string {
	var b strings.Builder
	for i, v := range c {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// Hash returns a stable 64-bit hash of the configuration under a tag.
func (c Config) Hash(tag string) uint64 { return rng.HashInts64(tag, c) }

// Validate checks that the configuration is well-formed for the space.
func (s *Space) Validate(c Config) error {
	if len(c) != len(s.params) {
		return fmt.Errorf("space: config has %d entries, space has %d parameters", len(c), len(s.params))
	}
	for i, lv := range c {
		if lv < 0 || lv >= s.params[i].Levels() {
			return fmt.Errorf("space: level %d out of range for parameter %s", lv, s.params[i].Name)
		}
	}
	return nil
}

// Values materializes the concrete parameter values of c in parameter order.
func (s *Space) Values(c Config) []int {
	vals := make([]int, len(c))
	for i, lv := range c {
		vals[i] = s.params[i].Value(lv)
	}
	return vals
}

// Value returns the concrete value of the named parameter in c, and
// whether the parameter exists.
func (s *Space) Value(c Config, name string) (int, bool) {
	i, ok := s.byName[name]
	if !ok {
		return 0, false
	}
	return s.params[i].Value(c[i]), true
}

// MustValue is Value but panics when the parameter does not exist.
func (s *Space) MustValue(c Config, name string) int {
	v, ok := s.Value(c, name)
	if !ok {
		panic("space: unknown parameter " + name)
	}
	return v
}

// String renders c as "name=value" pairs.
func (s *Space) String(c Config) string {
	var b strings.Builder
	for i, p := range s.params {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", p.Name, p.Label(c[i]))
	}
	return b.String()
}

// Encode maps c to a numeric feature vector for the surrogate model.
// Ordered parameters (IntRange, PowerOfTwo, Boolean) encode as their
// concrete value (log2 for PowerOfTwo, so tile sizes are on a linear
// scale); Categorical parameters encode as their level index, which a
// tree-based model can split on without assuming order.
func (s *Space) Encode(c Config) []float64 {
	f := make([]float64, len(c))
	for i, p := range s.params {
		switch p.Kind {
		case PowerOfTwo:
			f[i] = math.Log2(float64(p.Value(c[i])))
		case Categorical:
			f[i] = float64(c[i])
		default:
			f[i] = float64(p.Value(c[i]))
		}
	}
	return f
}

// FeatureNames returns the feature names corresponding to Encode's output.
func (s *Space) FeatureNames() []string {
	names := make([]string, len(s.params))
	for i, p := range s.params {
		if p.Kind == PowerOfTwo {
			names[i] = "log2_" + p.Name
		} else {
			names[i] = p.Name
		}
	}
	return names
}

// Default returns the all-zeros configuration (each parameter at its first
// level). For the SPAPT kernels this is the untransformed variant: unroll 1,
// tile 1, register tile 1, matching the suite's default/initial point.
func (s *Space) Default() Config { return make(Config, len(s.params)) }

// Random returns a uniform random configuration.
func (s *Space) Random(r *rng.RNG) Config {
	c := make(Config, len(s.params))
	for i, p := range s.params {
		c[i] = r.Intn(p.Levels())
	}
	return c
}

// Sampler samples configurations uniformly at random without replacement.
// It tracks previously returned keys, so it works on spaces of any size
// without materializing them; external evaluations can be excluded too.
type Sampler struct {
	space *Space
	r     *rng.RNG
	seen  map[string]struct{}
}

// NewSampler returns a Sampler drawing from r.
func NewSampler(s *Space, r *rng.RNG) *Sampler {
	return &Sampler{space: s, r: r, seen: make(map[string]struct{})}
}

// Exclude marks a configuration as already used.
func (sm *Sampler) Exclude(c Config) { sm.seen[c.Key()] = struct{}{} }

// Seen reports whether c has been returned or excluded.
func (sm *Sampler) Seen(c Config) bool {
	_, ok := sm.seen[c.Key()]
	return ok
}

// Drawn returns how many distinct configurations have been drawn/excluded.
func (sm *Sampler) Drawn() int { return len(sm.seen) }

// Next returns a configuration not previously returned or excluded.
// ok is false when the space is exhausted.
func (sm *Sampler) Next() (Config, bool) {
	if float64(len(sm.seen)) >= sm.space.Size() {
		return nil, false
	}
	// Rejection sampling; with |seen| ≤ nmax ≈ 100 and spaces of 1e8-1e12,
	// collisions are essentially nonexistent. For tiny test spaces the
	// fallback below guarantees termination.
	for attempt := 0; attempt < 64; attempt++ {
		c := sm.space.Random(sm.r)
		if !sm.Seen(c) {
			sm.Exclude(c)
			return c, true
		}
	}
	return sm.exhaustiveNext()
}

// exhaustiveNext enumerates the space in mixed-radix order to find the
// k-th unseen configuration for a uniformly drawn k. Only reachable when
// the space is small and mostly consumed.
func (sm *Sampler) exhaustiveNext() (Config, bool) {
	total := int(sm.space.Size())
	remaining := total - len(sm.seen)
	if remaining <= 0 {
		return nil, false
	}
	target := sm.r.Intn(remaining)
	c := sm.space.Default()
	for i := 0; i < total; i++ {
		if !sm.Seen(c) {
			if target == 0 {
				out := c.Clone()
				sm.Exclude(out)
				return out, true
			}
			target--
		}
		if !sm.space.increment(c) {
			break
		}
	}
	return nil, false
}

// increment advances c to the next configuration in mixed-radix order,
// returning false after wrapping past the last configuration.
func (s *Space) increment(c Config) bool {
	for i := len(c) - 1; i >= 0; i-- {
		c[i]++
		if c[i] < s.params[i].Levels() {
			return true
		}
		c[i] = 0
	}
	return false
}

// SamplePool returns up to n distinct random configurations (fewer only if
// the space is smaller than n). This is the "configuration pool" X_p of
// Algorithms 1 and 2.
func (s *Space) SamplePool(n int, r *rng.RNG) []Config {
	if float64(n) >= s.Size() {
		return s.Enumerate()
	}
	sm := NewSampler(s, r)
	pool := make([]Config, 0, n)
	for len(pool) < n {
		c, ok := sm.Next()
		if !ok {
			break
		}
		pool = append(pool, c)
	}
	return pool
}

// Enumerate returns every configuration of the space in mixed-radix order.
// It panics if the space has more than 1<<22 configurations.
func (s *Space) Enumerate() []Config {
	size := s.Size()
	if size > 1<<22 {
		panic("space: Enumerate on a space that is too large")
	}
	out := make([]Config, 0, int(size))
	c := s.Default()
	for {
		out = append(out, c.Clone())
		if !s.increment(c) {
			return out
		}
	}
}

// Neighbors returns the configurations reachable from c by moving one
// parameter one level up or down (used by local-search techniques).
func (s *Space) Neighbors(c Config) []Config {
	var out []Config
	for i, p := range s.params {
		if c[i] > 0 {
			n := c.Clone()
			n[i]--
			out = append(out, n)
		}
		if c[i] < p.Levels()-1 {
			n := c.Clone()
			n[i]++
			out = append(out, n)
		}
	}
	return out
}

// SortedNames returns the parameter names sorted alphabetically (useful
// for deterministic reporting).
func (s *Space) SortedNames() []string {
	names := s.Names()
	sort.Strings(names)
	return names
}
