package search

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/forest"
	"repro/internal/obs"
	"repro/internal/rng"
)

// tracedCtx returns a context carrying a tracer over a fresh memory sink.
func tracedCtx() (context.Context, *obs.MemorySink) {
	sink := &obs.MemorySink{}
	return obs.WithTracer(context.Background(), obs.New(sink)), sink
}

// fitBowlModel trains a small forest surrogate on bowl data, the same
// way the model-search tests do.
func fitBowlModel(t *testing.T, p *bowl, seed uint64) Model {
	t.Helper()
	res := RS(context.Background(), p, 60, rng.New(seed))
	ds := DatasetFrom(res)
	X, y := ds.Encode(p.Space())
	f, err := forest.Fit(X, y, forest.Params{Trees: 20}, rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestTracingDoesNotPerturbSearch is the telemetry layer's hard
// constraint: a traced run and an untraced run with the same seed must
// produce bit-identical Results, across every algorithm family
// (tracing draws no randomness and never touches the rng streams).
func TestTracingDoesNotPerturbSearch(t *testing.T) {
	model := fitBowlModel(t, newBowl(), 7)

	runs := map[string]func(ctx context.Context) *Result{
		"RS": func(ctx context.Context) *Result {
			return RS(ctx, newBowl(), 40, rng.New(3))
		},
		"RSp": func(ctx context.Context) *Result {
			return RSp(ctx, newBowl(), model,
				RSpOptions{NMax: 20, PoolSize: 300}, rng.New(3), rng.New(4))
		},
		"RSb": func(ctx context.Context) *Result {
			return RSb(ctx, newBowl(), model, RSbOptions{NMax: 20, PoolSize: 300}, rng.New(4))
		},
		"SA": func(ctx context.Context) *Result {
			p := newBowl()
			return Drive(ctx, p, NewAnneal(p.Space(), rng.New(5), 0.9), 30)
		},
		"resilient": func(ctx context.Context) *Result {
			sp := newScripted()
			for x := 0; x < 10; x++ {
				// Every config: one transient crash, then a run censored
				// at the cap — exercises retry, fault, and censor events.
				sp.script[cfg(x).Key()] = []float64{-2, 90}
			}
			p := NewResilient(sp, ResilientOptions{Retries: 2, Timeout: 30})
			return RS(ctx, p, 3, rng.New(6))
		},
	}
	for name, run := range runs {
		untraced := run(context.Background())
		ctx, sink := tracedCtx()
		traced := run(ctx)
		if !reflect.DeepEqual(untraced, traced) {
			t.Errorf("%s: traced result differs from untraced", name)
		}
		if sink.Len() == 0 {
			t.Errorf("%s: traced run emitted no events", name)
		}
	}
}

func TestTraceEventsCoverSearchLifecycle(t *testing.T) {
	ctx, sink := tracedCtx()
	res := RS(ctx, newBowl(), 10, rng.New(1))

	starts := sink.ByKind(obs.KindSearchStart)
	if len(starts) != 1 || starts[0].Algo != "RS" || starts[0].Problem != "bowl" {
		t.Fatalf("search-start events: %+v", starts)
	}
	evals := sink.ByKind(obs.KindEval)
	if len(evals) != len(res.Records) {
		t.Fatalf("%d eval events for %d records", len(evals), len(res.Records))
	}
	for i, e := range evals {
		rec := res.Records[i]
		if e.Seq != i || e.Value != rec.RunTime || e.Cost != rec.Cost ||
			e.Elapsed != rec.Elapsed || e.Status != rec.Status.String() {
			t.Fatalf("eval event %d = %+v does not match record %+v", i, e, rec)
		}
		if e.Config != obs.ConfigString(rec.Config) {
			t.Fatalf("eval event %d config %q != record %v", i, e.Config, rec.Config)
		}
	}
	fins := sink.ByKind(obs.KindSearchFinish)
	if len(fins) != 1 {
		t.Fatalf("search-finish events: %+v", fins)
	}
	best, _, _ := res.Best()
	if fins[0].N != len(res.Records) || fins[0].Value != best.RunTime ||
		fins[0].Elapsed != res.Elapsed() {
		t.Fatalf("search-finish totals wrong: %+v", fins[0])
	}
}

func TestTraceSkipAndPredictEvents(t *testing.T) {
	model := fitBowlModel(t, newBowl(), 11)
	ctx, sink := tracedCtx()
	res := RSp(ctx, newBowl(), model,
		RSpOptions{NMax: 15, PoolSize: 400, DeltaPct: 20}, rng.New(2), rng.New(3))

	skips := sink.ByKind(obs.KindSkip)
	if len(skips) != res.Skipped {
		t.Fatalf("%d skip events for Skipped=%d", len(skips), res.Skipped)
	}
	for _, e := range skips {
		if e.Value < e.Cost { // prediction beat the cutoff yet was skipped
			t.Fatalf("skip event with pred %v < cutoff %v", e.Value, e.Cost)
		}
	}
	preds := sink.ByKind(obs.KindModelPredict)
	if len(preds) < 1 {
		t.Fatal("no model-predict events")
	}
	var phases []string
	total := 0
	for _, e := range preds {
		phases = append(phases, e.Detail)
		total += e.N
	}
	if phases[0] != "pool-score" || preds[0].N != 400 {
		t.Fatalf("pool scoring event wrong: %+v", preds[0])
	}
	// Every candidate either evaluated or skipped was scored once, plus
	// the pool.
	if want := 400 + len(res.Records) + res.Skipped; total != want {
		t.Fatalf("predict calls = %d, want %d (phases %v)", total, want, phases)
	}
}

func TestTraceResilientEvents(t *testing.T) {
	ctx, sink := tracedCtx()
	sp := newScripted()
	sp.script[cfg(0).Key()] = []float64{-2, 90} // transient crash, then censored
	sp.script[cfg(1).Key()] = []float64{5}      // clean
	sp.script[cfg(2).Key()] = []float64{-1}     // permanent failure
	p := NewResilient(sp, ResilientOptions{Retries: 2, Timeout: 30})

	if out := p.EvaluateFull(ctx, cfg(0)); out.Status != StatusCensored {
		t.Fatalf("first outcome %+v", out)
	}
	if out := p.EvaluateFull(ctx, cfg(1)); out.Status != StatusOK {
		t.Fatalf("second outcome %+v", out)
	}
	if out := p.EvaluateFull(ctx, cfg(2)); out.Status != StatusFailed {
		t.Fatalf("third outcome %+v", out)
	}

	retries := sink.ByKind(obs.KindRetry)
	if len(retries) != 1 || retries[0].N != 0 || retries[0].Cost != 1 {
		t.Errorf("retry events = %+v", retries)
	}
	censors := sink.ByKind(obs.KindCensor)
	if len(censors) != 1 || censors[0].Value != 90 || censors[0].Cost != 30 {
		t.Errorf("censor events = %+v", censors)
	}
	// Faults: the transient attempt and the permanent failure.
	if got := len(sink.ByKind(obs.KindFault)); got != 2 {
		t.Errorf("fault events = %d, want 2", got)
	}
}

func TestTraceCacheHitEvents(t *testing.T) {
	ctx, sink := tracedCtx()
	p := newBowl()
	// Pattern search on a tiny space quickly re-proposes visited points.
	Drive(ctx, p, NewPattern(p.Space(), rng.New(9), 2), 25)
	if sink.ByKind(obs.KindCacheHit) == nil {
		t.Skip("no duplicate proposals in this run")
	}
}
