package search

import (
	"context"

	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/space"
)

// scriptedProblem replays a per-config script of evaluation outcomes:
// each entry is a run time, or a negative code (-1 permanent failure,
// -2 transient failure).
type scriptedProblem struct {
	spc    *space.Space
	script map[string][]float64
	calls  map[string]int
}

func newScripted() *scriptedProblem {
	return &scriptedProblem{
		spc:    space.New(space.NewIntRange("x", 0, 9)),
		script: map[string][]float64{},
		calls:  map[string]int{},
	}
}

func (s *scriptedProblem) Name() string        { return "scripted@test" }
func (s *scriptedProblem) Space() *space.Space { return s.spc }

func (s *scriptedProblem) TryEvaluate(c space.Config) (float64, float64, error) {
	key := c.Key()
	i := s.calls[key]
	s.calls[key]++
	steps := s.script[key]
	v := 1.0
	if i < len(steps) {
		v = steps[i]
	}
	switch {
	case v == -1:
		return 0, 0.5, errors.New("permanent")
	case v == -2:
		return 0, 0.5, Transient(errors.New("transient"))
	default:
		return v, v + 0.5, nil
	}
}

func cfg(x int) space.Config { return space.Config{x} }

func TestResilientRetriesTransientAndChargesBackoff(t *testing.T) {
	p := newScripted()
	p.script[cfg(1).Key()] = []float64{-2, -2, 3}
	r := NewResilient(p, ResilientOptions{Retries: 2, Backoff: 1})
	out := r.EvaluateFull(context.Background(), cfg(1))
	if out.Status != StatusOK || out.RunTime != 3 || out.Retries != 2 {
		t.Fatalf("outcome = %+v", out)
	}
	// Two failed attempts (0.5 each) + backoff 1 + 2 + success (3.5).
	want := 0.5 + 0.5 + 1 + 2 + 3.5
	if math.Abs(out.Cost-want) > 1e-12 {
		t.Fatalf("cost = %v, want %v", out.Cost, want)
	}
}

func TestResilientExhaustsRetryBudget(t *testing.T) {
	p := newScripted()
	p.script[cfg(2).Key()] = []float64{-2, -2, -2, -2}
	r := NewResilient(p, ResilientOptions{Retries: 2, Backoff: 1})
	out := r.EvaluateFull(context.Background(), cfg(2))
	if out.Status != StatusFailed || !math.IsInf(out.RunTime, 1) {
		t.Fatalf("outcome = %+v", out)
	}
	if out.Err == nil || IsTransient(out.Err) != true {
		t.Fatalf("want final transient error, got %v", out.Err)
	}
	if out.Retries != 2 {
		t.Fatalf("retries = %d", out.Retries)
	}
	// Three failed attempts + backoff 1 + 2 (no backoff after the last).
	if want := 1.5 + 3.0; math.Abs(out.Cost-want) > 1e-12 {
		t.Fatalf("cost = %v, want %v", out.Cost, want)
	}
}

func TestResilientPermanentFailureNotRetried(t *testing.T) {
	p := newScripted()
	p.script[cfg(3).Key()] = []float64{-1, 5}
	r := NewResilient(p, ResilientOptions{Retries: 3})
	out := r.EvaluateFull(context.Background(), cfg(3))
	if out.Status != StatusFailed || out.Retries != 0 {
		t.Fatalf("outcome = %+v", out)
	}
	if p.calls[cfg(3).Key()] != 1 {
		t.Fatalf("permanent failure retried %d times", p.calls[cfg(3).Key()]-1)
	}
}

func TestResilientCensorsAtTimeout(t *testing.T) {
	p := newScripted()
	p.script[cfg(4).Key()] = []float64{100}
	r := NewResilient(p, ResilientOptions{Timeout: 10})
	out := r.EvaluateFull(context.Background(), cfg(4))
	if out.Status != StatusCensored || out.RunTime != 10 {
		t.Fatalf("outcome = %+v", out)
	}
	// Charged: compile 0.5 + capped run 10, not the full 100.
	if want := 10.5; math.Abs(out.Cost-want) > 1e-12 {
		t.Fatalf("cost = %v, want %v", out.Cost, want)
	}
}

func TestResilientImplementsProblem(t *testing.T) {
	p := newScripted()
	p.script[cfg(5).Key()] = []float64{-1}
	var prob Problem = NewResilient(p, ResilientOptions{})
	run, _ := prob.Evaluate(cfg(5))
	if !math.IsInf(run, 1) {
		t.Fatalf("failed evaluation should surface as +Inf, got %v", run)
	}
	if prob.Name() != "scripted@test" {
		t.Fatal("name not passed through")
	}
}

func TestFallibleShimRoundTrip(t *testing.T) {
	base := problemStub{}
	fp := Fallible(base)
	run, cost, err := fp.TryEvaluate(cfg(1))
	if err != nil || run != 2 || cost != 3 {
		t.Fatalf("shim returned %v %v %v", run, cost, err)
	}
	// Already-fallible problems pass through unchanged.
	ip := interfaceProblem{newScripted()}
	if got := Fallible(ip); got != FallibleProblem(ip) {
		t.Fatal("already-fallible problem was re-wrapped")
	}
}

type problemStub struct{}

func (problemStub) Name() string        { return "stub" }
func (problemStub) Space() *space.Space { return space.New(space.NewIntRange("x", 0, 9)) }
func (problemStub) Evaluate(space.Config) (float64, float64) {
	return 2, 3
}

// interfaceProblem is both a Problem and a FallibleProblem.
type interfaceProblem struct{ *scriptedProblem }

func (ip interfaceProblem) Evaluate(c space.Config) (float64, float64) {
	run, cost, _ := ip.TryEvaluate(c)
	return run, cost
}

func TestSearchesCompleteUnderFailures(t *testing.T) {
	// A fallible problem where a third of the space permanently fails:
	// every search driver must run to completion and report counts.
	spc := space.New(space.NewIntRange("x", 0, 29), space.NewIntRange("y", 0, 9))
	fp := &funcFallible{spc: spc, fn: func(c space.Config) (float64, float64, error) {
		if c[0]%3 == 0 {
			return 0, 0.2, errors.New("no build")
		}
		return 1 + float64(c[0])*0.1 + float64(c[1])*0.01, 1.5, nil
	}}
	p := NewResilient(fp, ResilientOptions{Retries: 1})

	res := RS(context.Background(), p, 60, rng.New(3))
	counts := res.Counts()
	if counts.Failed == 0 || counts.OK == 0 {
		t.Fatalf("counts = %+v", counts)
	}
	if counts.Total() != len(res.Records) {
		t.Fatalf("counts total %d vs %d records", counts.Total(), len(res.Records))
	}
	best, _, ok := res.Best()
	if !ok || !best.Measured() {
		t.Fatalf("no measured best under partial failures")
	}

	for _, mk := range []func() *Result{
		func() *Result { return Drive(context.Background(), p, NewAnneal(spc, rng.New(5), 0.9), 40) },
		func() *Result { return Drive(context.Background(), p, NewGenetic(spc, rng.New(6), 8, 0.2), 40) },
		func() *Result { return Drive(context.Background(), p, NewPattern(spc, rng.New(7), 4), 40) },
	} {
		res := mk()
		if _, _, ok := res.Best(); !ok {
			t.Fatalf("heuristic found no measured best")
		}
		for _, rec := range res.Records {
			if rec.Status == StatusFailed && !math.IsInf(rec.RunTime, 1) {
				t.Fatalf("failed record has run time %v", rec.RunTime)
			}
		}
	}
}

type funcFallible struct {
	spc *space.Space
	fn  func(space.Config) (float64, float64, error)
}

func (f *funcFallible) Name() string        { return "func@test" }
func (f *funcFallible) Space() *space.Space { return f.spc }
func (f *funcFallible) TryEvaluate(c space.Config) (float64, float64, error) {
	return f.fn(c)
}

func TestEvaluateFullFlagsNonFinite(t *testing.T) {
	p := nanProblem{}
	out := EvaluateFull(context.Background(), p, cfg(1))
	if out.Status != StatusFailed || !math.IsInf(out.RunTime, 1) {
		t.Fatalf("outcome = %+v", out)
	}
}

type nanProblem struct{}

func (nanProblem) Name() string        { return "nan" }
func (nanProblem) Space() *space.Space { return space.New(space.NewIntRange("x", 0, 9)) }
func (nanProblem) Evaluate(space.Config) (float64, float64) {
	return math.NaN(), 1
}

func TestStatusRoundTrip(t *testing.T) {
	for _, st := range []Status{StatusOK, StatusCensored, StatusFailed} {
		got, err := ParseStatus(st.String())
		if err != nil || got != st {
			t.Fatalf("round trip %v: %v %v", st, got, err)
		}
	}
	if _, err := ParseStatus("exploded"); err == nil {
		t.Fatal("unknown status accepted")
	}
	rec := Record{Status: StatusOK, Retries: 2}
	if rec.StatusLabel() != "retried-2" {
		t.Fatalf("label = %q", rec.StatusLabel())
	}
	if fmt.Sprint(StatusCensored) != "censored" {
		t.Fatal("String not wired into fmt")
	}
	// Unknown values render the numeric fallback and refuse to parse.
	if got := Status(99).String(); got != "status(99)" {
		t.Fatalf("unknown status = %q", got)
	}
	if _, err := ParseStatus(Status(99).String()); err == nil {
		t.Fatal("numeric fallback parsed as a valid status")
	}
	// A censored record that was also retried labels as censored: the
	// retries are folded in only for clean measurements.
	censored := Record{Status: StatusCensored, Retries: 2}
	if censored.StatusLabel() != "censored" {
		t.Fatalf("censored-with-retries label = %q", censored.StatusLabel())
	}
}

// cancellingFallible fails transiently on every attempt and cancels the
// context from inside attempt number `after` — modelling a shutdown that
// lands while the evaluator is mid-retry.
type cancellingFallible struct {
	spc    *space.Space
	cancel context.CancelFunc
	after  int
	calls  int
}

func (p *cancellingFallible) Name() string        { return "cancelling@test" }
func (p *cancellingFallible) Space() *space.Space { return p.spc }
func (p *cancellingFallible) TryEvaluate(c space.Config) (float64, float64, error) {
	p.calls++
	if p.calls >= p.after {
		p.cancel()
	}
	return 0, 0.5, Transient(errors.New("transient"))
}

// TestResilientCancellationMidRetryAccounting pins the backoff
// accounting of an evaluation cut short between retries: the outcome is
// Interrupted (never recorded), and its Cost is exactly the attempts
// plus backoffs charged before the cancellation was observed — here
// 0.5 + 1 (backoff 2^0) + 0.5 + 2 (backoff 2^1) = 4.
func TestResilientCancellationMidRetryAccounting(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := &cancellingFallible{
		spc:    space.New(space.NewIntRange("x", 0, 9)),
		cancel: cancel,
		after:  2,
	}
	r := NewResilient(p, ResilientOptions{Retries: 3, Backoff: 1})
	out := r.EvaluateFull(ctx, cfg(3))

	if !out.Interrupted() {
		t.Fatalf("outcome not interrupted: %+v", out)
	}
	if !errors.Is(out.Err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", out.Err)
	}
	if out.Cost != 4 {
		t.Fatalf("cost = %v, want 4 (two 0.5 attempts plus backoffs 1 and 2)", out.Cost)
	}
	if !math.IsInf(out.RunTime, 1) || out.Status != StatusFailed {
		t.Fatalf("interrupted outcome carries (%v,%v), want (+Inf,failed)", out.RunTime, out.Status)
	}
	if p.calls != 2 {
		t.Fatalf("problem saw %d attempts, want 2 (no attempt after cancellation)", p.calls)
	}
}

// TestResilientCancellationBeforeFirstAttempt: a context already
// cancelled charges nothing and never touches the problem.
func TestResilientCancellationBeforeFirstAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := &cancellingFallible{spc: space.New(space.NewIntRange("x", 0, 9)), cancel: func() {}, after: 99}
	r := NewResilient(p, ResilientOptions{Retries: 2, Backoff: 1})
	out := r.EvaluateFull(ctx, cfg(1))
	if !out.Interrupted() || out.Cost != 0 {
		t.Fatalf("got %+v, want interrupted with zero cost", out)
	}
	if p.calls != 0 {
		t.Fatalf("problem saw %d attempts, want 0", p.calls)
	}
}
