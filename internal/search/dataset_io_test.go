package search

import (
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
	"repro/internal/space"
)

func ioSpace() *space.Space {
	return space.New(
		space.NewIntRange("u", 1, 8),
		space.NewPowerOfTwo("t", 0, 4),
		space.NewBoolean("scr"),
	)
}

func TestDatasetCSVRoundtrip(t *testing.T) {
	spc := ioSpace()
	r := rng.New(1)
	var ds Dataset
	for i := 0; i < 40; i++ {
		ds = append(ds, Sample{Config: spc.Random(r), RunTime: 1 + r.Float64()*10})
	}
	var buf strings.Builder
	if err := ds.SaveCSV(&buf, spc); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSV(strings.NewReader(buf.String()), spc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds) {
		t.Fatalf("row count %d vs %d", len(got), len(ds))
	}
	for i := range ds {
		if got[i].Config.Key() != ds[i].Config.Key() || got[i].RunTime != ds[i].RunTime {
			t.Fatalf("row %d changed: %v/%v vs %v/%v", i,
				got[i].Config, got[i].RunTime, ds[i].Config, ds[i].RunTime)
		}
	}
	if !strings.HasPrefix(buf.String(), "u,t,scr,run_time\n") {
		t.Fatalf("header wrong: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
}

func TestLoadCSVValidation(t *testing.T) {
	spc := ioSpace()
	cases := map[string]string{
		"empty":          "",
		"header only":    "u,t,scr,run_time\n",
		"wrong header":   "a,b,c,run_time\n0,0,0,1\n",
		"short header":   "u,t,run_time\n0,0,1\n",
		"short row":      "u,t,scr,run_time\n0,0,1\n",
		"truncated row":  "u,t,scr,run_time\n0,0,0,1\n1,2\n",
		"extra column":   "u,t,scr,run_time\n0,0,0,1,9\n",
		"bad level":      "u,t,scr,run_time\n99,0,0,1\n",
		"negative level": "u,t,scr,run_time\n-1,0,0,1\n",
		"bad float":      "u,t,scr,run_time\n0,0,0,abc\n",
		"negative time":  "u,t,scr,run_time\n0,0,0,-5\n",
		"NaN time":       "u,t,scr,run_time\n0,0,0,NaN\n",
		"Inf time":       "u,t,scr,run_time\n0,0,0,+Inf\n",
		"non-int level":  "u,t,scr,run_time\n1.5,0,0,1\n",

		"wrong trailing column": "u,t,scr,run_time,notes\n0,0,0,1,hi\n",
		"unknown status":        "u,t,scr,run_time,status\n0,0,0,1,exploded\n",
		"failed status row":     "u,t,scr,run_time,status\n0,0,0,1,failed\n",
		"status row too short":  "u,t,scr,run_time,status\n0,0,0,1\n",
	}
	for name, doc := range cases {
		if _, err := LoadCSV(strings.NewReader(doc), spc); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// LoadCSV diagnostics cite 1-based file lines (header = line 1) and
// 1-based columns, matching what editors display.
func TestLoadCSVErrorsAreOneBased(t *testing.T) {
	spc := ioSpace()
	cases := []struct {
		name, doc, want string
	}{
		{"header name", "a,t,scr,run_time\n0,0,0,1\n", "line 1: header column 1"},
		{"header width", "u,t,run_time\n0,0,1\n", "line 1: header has 3 columns"},
		{"header trailing", "u,t,scr,run_time,notes\n0,0,0,1,hi\n", "line 1: header trailing column"},
		{"first data row", "u,t,scr,run_time\n0,0,0,abc\n", "line 2:"},
		{"later data row", "u,t,scr,run_time\n0,0,0,1\n0,0,0,abc\n", "line 3:"},
		{"level column", "u,t,scr,run_time\n0,x,0,1\n", "line 2 column 2"},
	}
	for _, tc := range cases {
		_, err := LoadCSV(strings.NewReader(tc.doc), spc)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not cite %q", tc.name, err, tc.want)
		}
	}
}

func TestDatasetCSVCensoredRoundtrip(t *testing.T) {
	spc := ioSpace()
	r := rng.New(3)
	var ds Dataset
	for i := 0; i < 20; i++ {
		ds = append(ds, Sample{
			Config: spc.Random(r), RunTime: 1 + r.Float64()*10,
			Censored: i%4 == 0,
		})
	}
	var buf strings.Builder
	if err := ds.SaveCSV(&buf, spc); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "u,t,scr,run_time,status\n") {
		t.Fatalf("censored dataset missing status column: %q",
			strings.SplitN(buf.String(), "\n", 2)[0])
	}
	got, err := LoadCSV(strings.NewReader(buf.String()), spc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds) {
		t.Fatalf("row count %d vs %d", len(got), len(ds))
	}
	for i := range ds {
		if got[i].Censored != ds[i].Censored || got[i].RunTime != ds[i].RunTime {
			t.Fatalf("row %d changed: %+v vs %+v", i, got[i], ds[i])
		}
	}
}

func TestSaveCSVRejectsNonFiniteRunTime(t *testing.T) {
	spc := ioSpace()
	ds := Dataset{{Config: space.Config{0, 0, 0}, RunTime: math.Inf(1)}}
	var buf strings.Builder
	if err := ds.SaveCSV(&buf, spc); err == nil {
		t.Fatal("non-finite run time saved")
	}
}

func TestLoadCSVSkipsBlankLines(t *testing.T) {
	spc := ioSpace()
	doc := "u,t,scr,run_time\n0,0,0,1.5\n\n1,2,1,2.5\n"
	ds, err := LoadCSV(strings.NewReader(doc), spc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("rows = %d", len(ds))
	}
}

func TestSaveCSVRejectsInvalidConfig(t *testing.T) {
	spc := ioSpace()
	ds := Dataset{{Config: space.Config{99, 0, 0}, RunTime: 1}}
	var buf strings.Builder
	if err := ds.SaveCSV(&buf, spc); err == nil {
		t.Fatal("invalid config saved")
	}
}
