package search

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/space"
	"repro/internal/stats"
)

// Model predicts the run time of an encoded configuration. A fitted
// *forest.Forest satisfies it.
//
// Goroutine-safety contract: Predict must be safe for concurrent calls
// from multiple goroutines — implementations may not mutate shared state
// while predicting. Every in-tree model (forest.Forest, core.Surrogate,
// core.KNNModel, core.LinearModel) is an immutable fitted artifact whose
// Predict only reads it; this is what lets parallel experiment cells
// share one model and lets PredictAll shard rows over workers. The
// contract is pinned by -race hammer tests in forest and core.
type Model interface {
	Predict(x []float64) float64
}

// BatchModel is the optional batched extension of Model. PredictAll
// must return exactly what calling Predict on each row would — the
// batch is a performance path (forest.Forest shards it over workers),
// never a semantic one.
type BatchModel interface {
	Model
	PredictAll(X [][]float64) []float64
}

// predictAll scores every row of X with m, through the batched path
// when the model provides one and row-by-row otherwise. Either way the
// result is bit-identical to a serial Predict loop.
func predictAll(m Model, X [][]float64) []float64 {
	if bm, ok := m.(BatchModel); ok {
		return bm.PredictAll(X)
	}
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = m.Predict(x)
	}
	return out
}

// DefaultDeltaPct is the paper's pruning-cutoff quantile percentage.
const DefaultDeltaPct = 20

// NormalizeDeltaPct validates a pruning-cutoff quantile percentage. A
// zero value is the "unset" sentinel and quietly takes the paper's
// default; any other value outside (0, 100) — including NaN, which
// slips past naive range checks — is replaced by the default with
// adjusted=true, so callers can emit a warning instead of rewriting the
// parameter silently. RSp, RSpf, and core.Options all validate through
// this one function.
func NormalizeDeltaPct(d float64) (pct float64, adjusted bool) {
	if d == 0 {
		return DefaultDeltaPct, false
	}
	if math.IsNaN(d) || d <= 0 || d >= 100 {
		return DefaultDeltaPct, true
	}
	return d, false
}

// timedModel wraps a Model and accumulates the wall time its Predict
// calls take. The model-guided searches install it only when tracing is
// enabled, so the untraced scoring loop calls the model directly with
// zero overhead. Wall time never feeds back into the search: it is an
// observation about the harness, not a simulated quantity.
//
// Unlike the models it wraps, timedModel is intentionally NOT safe for
// concurrent use (the counters are plain fields): each search run owns
// its wrapper and calls it from one goroutine.
type timedModel struct {
	m   Model
	n   int
	dur time.Duration
}

// Predict implements Model.
func (tm *timedModel) Predict(x []float64) float64 {
	sw := obs.StartTimer()
	v := tm.m.Predict(x)
	tm.dur += sw.Elapsed()
	tm.n++
	return v
}

// PredictAll implements BatchModel by forwarding to the wrapped model's
// batched path, counting one call per row so a traced run reports the
// same prediction count a row-by-row loop would.
func (tm *timedModel) PredictAll(X [][]float64) []float64 {
	sw := obs.StartTimer()
	out := predictAll(tm.m, X)
	tm.dur += sw.Elapsed()
	tm.n += len(X)
	return out
}

// flush emits the accumulated calls as one model-predict event for the
// named phase and resets the counters.
func (tm *timedModel) flush(tr *obs.Tracer, algo, phase string) {
	tr.ModelPredict(algo, phase, tm.n, tm.dur)
	tm.n, tm.dur = 0, 0
}

// timed installs a timedModel over m when tr is enabled; otherwise it
// returns m itself and a nil wrapper.
func timed(tr *obs.Tracer, m Model) (Model, *timedModel) {
	if !tr.Enabled() {
		return m, nil
	}
	tm := &timedModel{m: m}
	return tm, tm
}

// RSpOptions configures random search with the pruning strategy
// (Algorithm 1).
type RSpOptions struct {
	// NMax is the evaluation budget (paper: 100).
	NMax int
	// PoolSize is N, the number of random configurations whose predicted
	// run times define the cutoff (paper: 10,000).
	PoolSize int
	// DeltaPct is the cutoff quantile percentage 0 < delta < 100
	// (paper: 20).
	DeltaPct float64
	// MaxConsidered bounds how many candidates may be examined in total,
	// evaluated or skipped (default 100*NMax), so an over-aggressive
	// cutoff cannot loop forever.
	MaxConsidered int
}

func (o RSpOptions) withDefaults() RSpOptions {
	if o.NMax <= 0 {
		o.NMax = 100
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 10000
	}
	o.DeltaPct, _ = NormalizeDeltaPct(o.DeltaPct)
	if o.MaxConsidered <= 0 {
		o.MaxConsidered = 100 * o.NMax
	}
	return o
}

// RSp is random search with the pruning strategy (Algorithm 1): sample
// configurations uniformly at random without replacement, predict each
// with the surrogate model m (fit on another machine's data), and
// evaluate only those whose prediction beats the delta-quantile cutoff
// computed over a fresh random pool.
//
// The candidate stream is drawn from r, so seeding r identically to a
// plain RS run makes RSp consider the same configurations in the same
// order and merely skip some — the paper's common-random-numbers setup.
// The pool is drawn from poolR.
func RSp(ctx context.Context, p Problem, m Model, opt RSpOptions, r, poolR *rng.RNG) *Result {
	origDelta := opt.DeltaPct
	_, adjusted := NormalizeDeltaPct(origDelta)
	opt = opt.withDefaults()
	spc := p.Space()
	run := newRunner(p, "RSp")
	run.start(ctx)
	defer run.finish()
	if adjusted {
		run.tr.Warn("RSp", fmt.Sprintf("deltaPct %g outside (0,100); using default %g", origDelta, opt.DeltaPct))
	}
	scorer, tm := timed(run.tr, m)

	pool := spc.SamplePool(opt.PoolSize, poolR)
	X := make([][]float64, len(pool))
	for i, c := range pool {
		X[i] = spc.Encode(c)
	}
	preds := predictAll(scorer, X)
	cutoff := stats.Quantile(preds, opt.DeltaPct/100)
	if tm != nil {
		tm.flush(run.tr, "RSp", "pool-score")
		defer tm.flush(run.tr, "RSp", "scan")
	}

	sampler := space.NewSampler(spc, r)
	considered := 0
	for len(run.res.Records) < opt.NMax && considered < opt.MaxConsidered && ctx.Err() == nil {
		c, ok := sampler.Next()
		if !ok {
			break
		}
		considered++
		if pred := scorer.Predict(spc.Encode(c)); pred < cutoff {
			if _, ok := run.evaluate(ctx, c); !ok {
				break
			}
		} else {
			run.skip(considered-1, c, pred, cutoff)
		}
	}
	return run.res
}

// RSbOptions configures random search with the biasing strategy
// (Algorithm 2).
type RSbOptions struct {
	// NMax is the evaluation budget (paper: 100).
	NMax int
	// PoolSize is N, the candidate pool size (paper: 10,000).
	PoolSize int
}

func (o RSbOptions) withDefaults() RSbOptions {
	if o.NMax <= 0 {
		o.NMax = 100
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 10000
	}
	return o
}

// RSb is random search with the biasing strategy (Algorithm 2): draw a
// pool of PoolSize random configurations, then repeatedly evaluate the
// pool configuration with the smallest predicted run time, removing it
// from the pool.
func RSb(ctx context.Context, p Problem, m Model, opt RSbOptions, poolR *rng.RNG) *Result {
	opt = opt.withDefaults()
	spc := p.Space()
	run := newRunner(p, "RSb")
	run.start(ctx)
	defer run.finish()
	scorer, tm := timed(run.tr, m)

	pool := spc.SamplePool(opt.PoolSize, poolR)
	type scored struct {
		c    space.Config
		pred float64
	}
	X := make([][]float64, len(pool))
	for i, c := range pool {
		X[i] = spc.Encode(c)
	}
	preds := predictAll(scorer, X)
	scoredPool := make([]scored, len(pool))
	for i, c := range pool {
		scoredPool[i] = scored{c: c, pred: preds[i]}
	}
	if tm != nil {
		tm.flush(run.tr, "RSb", "pool-score")
	}
	// Evaluating in ascending predicted order is equivalent to repeatedly
	// taking the argmin and removing it (the model is fixed).
	sort.SliceStable(scoredPool, func(a, b int) bool {
		//lint:ignore floatcmp predictions are means of finite training targets (forest fits on Dataset.Valid rows), so the pool is NaN-free
		return scoredPool[a].pred < scoredPool[b].pred
	})
	for i := 0; i < len(scoredPool) && len(run.res.Records) < opt.NMax && ctx.Err() == nil; i++ {
		if _, ok := run.evaluate(ctx, scoredPool[i].c); !ok {
			break
		}
	}
	return run.res
}

// RSpf is the model-free pruning control: it computes the cutoff from the
// source machine's measured run times and replays the source
// configurations in their original order, skipping those whose *source*
// run time missed the cutoff. The search is therefore restricted to the
// configurations of Ta.
func RSpf(ctx context.Context, p Problem, ta Dataset, deltaPct float64) *Result {
	// Same validation as RSp (via RSpOptions): out-of-range values warn
	// and take the default instead of being rewritten silently.
	origDelta := deltaPct
	deltaPct, adjusted := NormalizeDeltaPct(deltaPct)
	run := newRunner(p, "RSpf")
	run.start(ctx)
	defer run.finish()
	if adjusted {
		run.tr.Warn("RSpf", fmt.Sprintf("deltaPct %g outside (0,100); using default %g", origDelta, deltaPct))
	}
	ta = ta.Valid()
	if len(ta) == 0 {
		return run.res
	}
	ys := make([]float64, len(ta))
	for i, s := range ta {
		ys[i] = s.RunTime
	}
	cutoff := stats.Quantile(ys, deltaPct/100)
	for i, s := range ta {
		if ctx.Err() != nil {
			break
		}
		if s.RunTime < cutoff {
			if _, ok := run.evaluate(ctx, s.Config); !ok {
				break
			}
		} else {
			run.skip(i, s.Config, s.RunTime, cutoff)
		}
	}
	return run.res
}

// RSbf is the model-free biasing control: it sorts Ta ascending by the
// source run times and evaluates the configurations in that order.
// Censored source rows sort by their caps, which places them with the
// slow configurations they almost certainly are.
func RSbf(ctx context.Context, p Problem, ta Dataset) *Result {
	run := newRunner(p, "RSbf")
	run.start(ctx)
	defer run.finish()
	ta = ta.Valid()
	order := make([]int, len(ta))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		//lint:ignore floatcmp ta.Valid() above dropped every non-finite run time
		return ta[order[a]].RunTime < ta[order[b]].RunTime
	})
	for _, i := range order {
		if ctx.Err() != nil {
			break
		}
		if _, ok := run.evaluate(ctx, ta[i].Config); !ok {
			break
		}
	}
	return run.res
}

// RSbA is the active-learning refinement of the biasing strategy
// (following the surrogate-refinement idea of Balaprakash et al., cited
// as the basis for the paper's model choice): the search starts from the
// source-trained model and periodically refits it on the union of the
// source data and the target observations gathered so far, so the
// surrogate adapts to the target machine during the search.
//
// refit is called with the combined dataset and must return the new
// model; refitEvery controls the cadence (default: every 10
// evaluations).
func RSbA(ctx context.Context, p Problem, initial Model, ta Dataset, opt RSbOptions, refitEvery int,
	refit func(Dataset) (Model, error), poolR *rng.RNG) (*Result, error) {

	opt = opt.withDefaults()
	if refitEvery <= 0 {
		refitEvery = 10
	}
	spc := p.Space()
	run := newRunner(p, "RSbA")
	run.start(ctx)
	defer run.finish()

	pool := spc.SamplePool(opt.PoolSize, poolR)
	remaining := make([]space.Config, len(pool))
	copy(remaining, pool)
	// Encodings travel with the pool entries so each refit generation can
	// re-score the remaining configurations in one batch.
	enc := make([][]float64, len(remaining))
	for i, c := range remaining {
		enc[i] = spc.Encode(c)
	}

	model := initial
	observed := append(Dataset{}, ta...)

	// One timed wrapper spans every refit generation: its inner model is
	// swapped in place so the per-call latency metric covers the whole run.
	scorer, tm := timed(run.tr, model)
	if tm != nil {
		defer tm.flush(run.tr, "RSbA", "scan")
	}

	for len(run.res.Records) < opt.NMax && len(remaining) > 0 && ctx.Err() == nil {
		// Pick the argmin-predicted configuration from the remaining pool.
		// Batched scoring plus a strict-< scan reproduces the serial
		// Predict loop's choice exactly (first minimum wins in both).
		preds := predictAll(scorer, enc)
		best := 0
		bestPred := preds[0]
		for i := 1; i < len(preds); i++ {
			if preds[i] < bestPred {
				best, bestPred = i, preds[i]
			}
		}
		c := remaining[best]
		remaining[best] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
		enc[best] = enc[len(enc)-1]
		enc = enc[:len(enc)-1]

		rec, ok := run.evaluate(ctx, c)
		if !ok {
			break
		}
		// Failed evaluations contribute no training signal; censored ones
		// enter at the cap, a usable lower bound for ranking.
		if rec.Status != StatusFailed {
			observed = append(observed, Sample{
				Config: rec.Config, RunTime: rec.RunTime,
				Censored: rec.Status == StatusCensored,
			})
		}

		if len(run.res.Records)%refitEvery == 0 {
			var sw obs.Stopwatch
			if run.tr.Enabled() {
				sw = obs.StartTimer()
			}
			m, err := refit(observed)
			if err != nil {
				return nil, err
			}
			if run.tr.Enabled() {
				run.tr.ModelFit("RSbA-refit", len(observed), sw.Elapsed())
			}
			model = m
			if tm != nil {
				tm.m = model
			} else {
				scorer = model
			}
		}
	}
	return run.res, nil
}
