package search

import (
	"context"

	"errors"
	"math"
	"testing"

	"repro/internal/forest"
	"repro/internal/rng"
	"repro/internal/space"
)

// bowl is a synthetic problem with a known optimum: run time is a convex
// function of the distance to a target configuration.
type bowl struct {
	spc    *space.Space
	target []int
	evals  int
}

func newBowl() *bowl {
	spc := space.New(
		space.NewIntRange("a", 0, 9),
		space.NewIntRange("b", 0, 9),
		space.NewIntRange("c", 0, 9),
		space.NewIntRange("d", 0, 9),
	)
	return &bowl{spc: spc, target: []int{3, 7, 1, 5}}
}

func (b *bowl) Name() string        { return "bowl" }
func (b *bowl) Space() *space.Space { return b.spc }
func (b *bowl) Evaluate(c space.Config) (float64, float64) {
	b.evals++
	d := 0.0
	for i, t := range b.target {
		diff := float64(c[i] - t)
		d += diff * diff
	}
	run := 1 + d
	return run, run + 0.5
}

func (b *bowl) optimum() space.Config {
	c := make(space.Config, len(b.target))
	copy(c, b.target)
	return c
}

func TestRSNoRepeatsAndBudget(t *testing.T) {
	p := newBowl()
	res := RS(context.Background(), p, 50, rng.New(1))
	if len(res.Records) != 50 {
		t.Fatalf("RS evaluated %d configs, want 50", len(res.Records))
	}
	seen := map[string]bool{}
	for _, rec := range res.Records {
		if seen[rec.Config.Key()] {
			t.Fatal("RS repeated a configuration")
		}
		seen[rec.Config.Key()] = true
	}
}

func TestRSExhaustsSmallSpace(t *testing.T) {
	spc := space.New(space.NewIntRange("a", 0, 4))
	p := &bowl{spc: spc, target: []int{2}}
	res := RS(context.Background(), p, 100, rng.New(2))
	if len(res.Records) != 5 {
		t.Fatalf("RS on 5-config space evaluated %d", len(res.Records))
	}
	best, _, _ := res.Best()
	if best.RunTime != 1 {
		t.Fatalf("exhaustive RS missed the optimum: %v", best.RunTime)
	}
}

func TestRSCommonRandomNumbers(t *testing.T) {
	p1 := newBowl()
	p2 := newBowl()
	r1 := RS(context.Background(), p1, 30, rng.NewNamed(7, "crn"))
	r2 := RS(context.Background(), p2, 30, rng.NewNamed(7, "crn"))
	for i := range r1.Records {
		if r1.Records[i].Config.Key() != r2.Records[i].Config.Key() {
			t.Fatal("same-seeded RS runs diverged")
		}
	}
}

func TestElapsedMonotone(t *testing.T) {
	res := RS(context.Background(), newBowl(), 40, rng.New(3))
	prev := 0.0
	for _, rec := range res.Records {
		if rec.Elapsed <= prev {
			t.Fatal("search clock not strictly increasing")
		}
		prev = rec.Elapsed
	}
	if res.Elapsed() != prev {
		t.Fatal("Elapsed() mismatch")
	}
}

func TestBestAndTimeToReach(t *testing.T) {
	res := RS(context.Background(), newBowl(), 60, rng.New(4))
	best, idx, ok := res.Best()
	if !ok {
		t.Fatal("no best")
	}
	if res.Records[idx].RunTime != best.RunTime {
		t.Fatal("Best index mismatch")
	}
	tt, ok := res.TimeToReach(best.RunTime)
	if !ok || tt != res.Records[idx].Elapsed {
		t.Fatal("TimeToReach(best) should be the best's elapsed clock")
	}
	if _, ok := res.TimeToReach(0.5); ok {
		t.Fatal("TimeToReach of unreachable target succeeded")
	}
}

func TestBestSoFarNonIncreasing(t *testing.T) {
	res := RS(context.Background(), newBowl(), 60, rng.New(5))
	traj := res.BestSoFar()
	for i := 1; i < len(traj); i++ {
		if traj[i] > traj[i-1] {
			t.Fatal("best-so-far trajectory increased")
		}
	}
}

// fitModel trains a forest surrogate on an RS sample of the bowl —
// standing in for the source machine's data T_a.
func fitModel(t *testing.T, p Problem, n int, seed uint64) (Model, Dataset) {
	t.Helper()
	res := RS(context.Background(), p, n, rng.New(seed))
	ds := DatasetFrom(res)
	X, y := ds.Encode(p.Space())
	f, err := forest.Fit(X, y, forest.Params{Trees: 40}, rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return f, ds
}

func TestRSbFindsOptimumRegionFast(t *testing.T) {
	src := newBowl()
	model, _ := fitModel(t, src, 120, 11)
	tgt := newBowl()
	res := RSb(context.Background(), tgt, model, RSbOptions{NMax: 20, PoolSize: 2000}, rng.New(12))
	if len(res.Records) != 20 {
		t.Fatalf("RSb evaluated %d", len(res.Records))
	}
	best, _, _ := res.Best()
	// The model was trained on the same landscape: the best of 20 biased
	// evaluations must be near the optimum.
	if best.RunTime > 5 {
		t.Fatalf("RSb best %.2f too far from optimum 1.0", best.RunTime)
	}
	// And it must find it much faster than plain RS does on average.
	rs := RS(context.Background(), newBowl(), 20, rng.New(13))
	rsBest, _, _ := rs.Best()
	if best.RunTime >= rsBest.RunTime {
		t.Fatalf("RSb (%.2f) not better than RS (%.2f) with a perfect-source model",
			best.RunTime, rsBest.RunTime)
	}
}

func TestRSbEvaluatesInPredictedOrder(t *testing.T) {
	src := newBowl()
	model, _ := fitModel(t, src, 100, 21)
	tgt := newBowl()
	res := RSb(context.Background(), tgt, model, RSbOptions{NMax: 15, PoolSize: 500}, rng.New(22))
	spc := tgt.Space()
	prev := math.Inf(-1)
	for _, rec := range res.Records {
		pred := model.Predict(spc.Encode(rec.Config))
		if pred < prev-1e-9 {
			t.Fatal("RSb did not evaluate in ascending predicted order")
		}
		prev = pred
	}
}

func TestRSpSkipsPredictedPoor(t *testing.T) {
	src := newBowl()
	model, _ := fitModel(t, src, 120, 31)
	tgt := newBowl()
	res := RSp(context.Background(), tgt, model, RSpOptions{NMax: 30, PoolSize: 2000, DeltaPct: 20}, rng.New(32), rng.New(33))
	if len(res.Records) == 0 {
		t.Fatal("RSp evaluated nothing")
	}
	if res.Skipped == 0 {
		t.Fatal("RSp with a 20% cutoff skipped nothing")
	}
	// Evaluated configs should be much better than random on average.
	sum := 0.0
	for _, rec := range res.Records {
		sum += rec.RunTime
	}
	meanEval := sum / float64(len(res.Records))
	if meanEval > 40 {
		t.Fatalf("RSp evaluated configs averaging %.1f — cutoff not effective", meanEval)
	}
}

func TestRSpSharesCandidateStreamWithRS(t *testing.T) {
	// With a common seed, RSp's considered sequence must be RS's sequence:
	// RSp's evaluated configs appear in RS's (longer) sequence, in order.
	src := newBowl()
	model, _ := fitModel(t, src, 120, 41)
	seq := Sequence(newBowl().Space(), 3000, rng.NewNamed(5, "stream"))
	res := RSp(context.Background(), newBowl(), model, RSpOptions{NMax: 25, PoolSize: 1000}, rng.NewNamed(5, "stream"), rng.New(42))
	pos := 0
	for _, rec := range res.Records {
		found := false
		for pos < len(seq) {
			if seq[pos].Key() == rec.Config.Key() {
				found = true
				pos++
				break
			}
			pos++
		}
		if !found {
			t.Fatal("RSp evaluation order is not a subsequence of the shared RS stream")
		}
	}
}

func TestRSpfRestrictedToTa(t *testing.T) {
	src := newBowl()
	srcRes := RS(context.Background(), src, 50, rng.New(51))
	ta := DatasetFrom(srcRes)
	res := RSpf(context.Background(), newBowl(), ta, 20)
	// ~20% of 50 = ~10 evaluations.
	if len(res.Records) == 0 || len(res.Records) > 15 {
		t.Fatalf("RSpf evaluated %d configs, expected about 10", len(res.Records))
	}
	inTa := map[string]bool{}
	for _, s := range ta {
		inTa[s.Config.Key()] = true
	}
	for _, rec := range res.Records {
		if !inTa[rec.Config.Key()] {
			t.Fatal("RSpf evaluated a config outside Ta")
		}
	}
	if res.Skipped != len(ta)-len(res.Records) {
		t.Fatalf("RSpf skip count %d inconsistent", res.Skipped)
	}
}

func TestRSbfSortedBySourceTimes(t *testing.T) {
	src := newBowl()
	srcRes := RS(context.Background(), src, 40, rng.New(61))
	ta := DatasetFrom(srcRes)
	res := RSbf(context.Background(), newBowl(), ta)
	if len(res.Records) != len(ta) {
		t.Fatalf("RSbf evaluated %d of %d", len(res.Records), len(ta))
	}
	// Source times of the evaluation order must be ascending. Here source
	// and target are the same landscape, so target times are ascending too.
	for i := 1; i < len(res.Records); i++ {
		if res.Records[i].RunTime < res.Records[i-1].RunTime {
			t.Fatal("RSbf order not ascending in source run time on identical landscapes")
		}
	}
}

func TestReplayExactOrder(t *testing.T) {
	seq := Sequence(newBowl().Space(), 20, rng.New(71))
	res := Replay(context.Background(), newBowl(), seq, "replay")
	if len(res.Records) != 20 {
		t.Fatal("replay wrong length")
	}
	for i := range seq {
		if res.Records[i].Config.Key() != seq[i].Key() {
			t.Fatal("replay deviated from sequence")
		}
	}
}

func TestDatasetEncode(t *testing.T) {
	p := newBowl()
	res := RS(context.Background(), p, 10, rng.New(81))
	ds := DatasetFrom(res)
	X, y := ds.Encode(p.Space())
	if len(X) != 10 || len(y) != 10 {
		t.Fatal("encode shape wrong")
	}
	for i := range y {
		if y[i] != res.Records[i].RunTime {
			t.Fatal("targets mismatch")
		}
	}
}

func TestAnnealImproves(t *testing.T) {
	p := newBowl()
	res := Drive(context.Background(), p, NewAnneal(p.Space(), rng.New(91), 0.95), 150)
	best, _, _ := res.Best()
	if best.RunTime > 3 {
		t.Fatalf("SA best %.2f after 150 evals on a smooth bowl", best.RunTime)
	}
}

func TestGeneticImproves(t *testing.T) {
	p := newBowl()
	res := Drive(context.Background(), p, NewGenetic(p.Space(), rng.New(92), 16, 0.15), 200)
	best, _, _ := res.Best()
	if best.RunTime > 3 {
		t.Fatalf("GA best %.2f after 200 evals on a smooth bowl", best.RunTime)
	}
}

func TestPatternSearchConvergesOnConvex(t *testing.T) {
	p := newBowl()
	res := Drive(context.Background(), p, NewPattern(p.Space(), rng.New(93), 4), 150)
	best, _, _ := res.Best()
	if best.RunTime > 2 {
		t.Fatalf("pattern search best %.2f on convex bowl", best.RunTime)
	}
}

func TestDriveNoDuplicateEvaluations(t *testing.T) {
	p := newBowl()
	res := Drive(context.Background(), p, NewAnneal(p.Space(), rng.New(94), 0.9), 100)
	seen := map[string]bool{}
	for _, rec := range res.Records {
		if seen[rec.Config.Key()] {
			t.Fatal("Drive evaluated a duplicate")
		}
		seen[rec.Config.Key()] = true
	}
}

func TestRandomTechnique(t *testing.T) {
	p := newBowl()
	res := Drive(context.Background(), p, NewRandomTechnique(p.Space(), rng.New(95)), 50)
	if len(res.Records) != 50 {
		t.Fatalf("random technique evaluated %d", len(res.Records))
	}
}

func TestRSpDefaults(t *testing.T) {
	o := RSpOptions{}.withDefaults()
	if o.NMax != 100 || o.PoolSize != 10000 || o.DeltaPct != 20 {
		t.Fatalf("RSp defaults wrong: %+v (paper: nmax=100, N=10000, delta=20)", o)
	}
	ob := RSbOptions{}.withDefaults()
	if ob.NMax != 100 || ob.PoolSize != 10000 {
		t.Fatalf("RSb defaults wrong: %+v", ob)
	}
}

func TestAnnealWarmStart(t *testing.T) {
	p := newBowl()
	a := NewAnneal(p.Space(), rng.New(101), 0.95)
	a.SetStart(p.optimum())
	res := Drive(context.Background(), p, a, 30)
	if res.Records[0].RunTime != 1 {
		t.Fatalf("warm start ignored: first evaluation %v", res.Records[0].RunTime)
	}
}

func TestRSbAActiveRefit(t *testing.T) {
	src := newBowl()
	model, ta := fitModel(t, src, 60, 201)
	tgt := newBowl()
	refits := 0
	res, err := RSbA(context.Background(), tgt, model, ta, RSbOptions{NMax: 30, PoolSize: 1000}, 10,
		func(d Dataset) (Model, error) {
			refits++
			X, y := d.Encode(tgt.Space())
			return forest.Fit(X, y, forest.Params{Trees: 25}, rng.New(uint64(300+refits)))
		}, rng.New(202))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 30 {
		t.Fatalf("RSbA evaluated %d", len(res.Records))
	}
	if refits != 3 {
		t.Fatalf("expected 3 refits (every 10 of 30), got %d", refits)
	}
	best, _, _ := res.Best()
	if best.RunTime > 5 {
		t.Fatalf("RSbA best %.2f too far from optimum", best.RunTime)
	}
	// No duplicate evaluations from the pool.
	seen := map[string]bool{}
	for _, rec := range res.Records {
		if seen[rec.Config.Key()] {
			t.Fatal("RSbA repeated a configuration")
		}
		seen[rec.Config.Key()] = true
	}
}

func TestRSbARefitErrorPropagates(t *testing.T) {
	src := newBowl()
	model, ta := fitModel(t, src, 40, 211)
	tgt := newBowl()
	_, err := RSbA(context.Background(), tgt, model, ta, RSbOptions{NMax: 20, PoolSize: 200}, 5,
		func(Dataset) (Model, error) { return nil, errTest }, rng.New(212))
	if err == nil {
		t.Fatal("refit error swallowed")
	}
}

var errTest = errors.New("refit failed")

func TestSampleBestOverTime(t *testing.T) {
	res := &Result{Records: []Record{
		{Config: space.Config{0}, RunTime: 9, Elapsed: 10},
		{Config: space.Config{1}, RunTime: 5, Elapsed: 20},
		{Config: space.Config{2}, RunTime: 7, Elapsed: 30},
	}}
	got := res.SampleBestOverTime([]float64{5, 10, 15, 25, 100})
	want := []float64{math.Inf(1), 9, 9, 5, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample at %d = %v, want %v", i, got[i], want[i])
		}
	}
}
