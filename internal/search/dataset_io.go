package search

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/space"
)

// Dataset I/O: T_a is stored as CSV with a header of parameter names, one
// configuration per row (level values), and a final run_time column. The
// header is validated against the space on load, so a dataset collected
// for one kernel cannot silently be applied to another.

// SaveCSV writes the dataset for the given space.
func (d Dataset) SaveCSV(w io.Writer, spc *space.Space) error {
	bw := bufio.NewWriter(w)
	cols := append(append([]string{}, spc.Names()...), "run_time")
	if _, err := bw.WriteString(strings.Join(cols, ",") + "\n"); err != nil {
		return err
	}
	for i, s := range d {
		if err := spc.Validate(s.Config); err != nil {
			return fmt.Errorf("search: row %d: %w", i, err)
		}
		parts := make([]string, 0, len(s.Config)+1)
		for _, lv := range s.Config {
			parts = append(parts, strconv.Itoa(lv))
		}
		parts = append(parts, strconv.FormatFloat(s.RunTime, 'g', -1, 64))
		if _, err := bw.WriteString(strings.Join(parts, ",") + "\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadCSV reads a dataset saved by SaveCSV, checking the header against
// the space's parameter names and every row against its level ranges.
func LoadCSV(r io.Reader, spc *space.Space) (Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("search: empty dataset")
	}
	header := strings.Split(strings.TrimSpace(sc.Text()), ",")
	want := append(append([]string{}, spc.Names()...), "run_time")
	if len(header) != len(want) {
		return nil, fmt.Errorf("search: header has %d columns, space needs %d", len(header), len(want))
	}
	for i := range want {
		if header[i] != want[i] {
			return nil, fmt.Errorf("search: header column %d is %q, want %q", i, header[i], want[i])
		}
	}

	var ds Dataset
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != len(want) {
			return nil, fmt.Errorf("search: line %d has %d columns, want %d", lineNo, len(parts), len(want))
		}
		c := make(space.Config, spc.NumParams())
		for i := 0; i < spc.NumParams(); i++ {
			lv, err := strconv.Atoi(parts[i])
			if err != nil {
				return nil, fmt.Errorf("search: line %d column %d: %v", lineNo, i, err)
			}
			c[i] = lv
		}
		if err := spc.Validate(c); err != nil {
			return nil, fmt.Errorf("search: line %d: %w", lineNo, err)
		}
		y, err := strconv.ParseFloat(parts[len(parts)-1], 64)
		if err != nil || y < 0 {
			return nil, fmt.Errorf("search: line %d: bad run time %q", lineNo, parts[len(parts)-1])
		}
		ds = append(ds, Sample{Config: c, RunTime: y})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(ds) == 0 {
		return nil, fmt.Errorf("search: dataset has a header but no rows")
	}
	return ds, nil
}
