package search

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/space"
)

// Dataset I/O: T_a is stored as CSV with a header of parameter names, one
// configuration per row (level values), and a final run_time column. The
// header is validated against the space on load, so a dataset collected
// for one kernel cannot silently be applied to another.
//
// Datasets containing censored measurements carry one more column,
// "status" (ok | censored), so censoring survives the round trip; plain
// datasets keep the legacy layout and old files load unchanged.

// SaveCSV writes the dataset for the given space. The status column is
// emitted only when some row is censored.
func (d Dataset) SaveCSV(w io.Writer, spc *space.Space) error {
	withStatus := false
	for _, s := range d {
		if s.Censored {
			withStatus = true
			break
		}
	}
	bw := bufio.NewWriter(w)
	cols := append(append([]string{}, spc.Names()...), "run_time")
	if withStatus {
		cols = append(cols, "status")
	}
	if _, err := bw.WriteString(strings.Join(cols, ",") + "\n"); err != nil {
		return err
	}
	for i, s := range d {
		if err := spc.Validate(s.Config); err != nil {
			return fmt.Errorf("search: row %d: %w", i, err)
		}
		if math.IsNaN(s.RunTime) || math.IsInf(s.RunTime, 0) {
			return fmt.Errorf("search: row %d: non-finite run time %v", i, s.RunTime)
		}
		parts := make([]string, 0, len(s.Config)+2)
		for _, lv := range s.Config {
			parts = append(parts, strconv.Itoa(lv))
		}
		parts = append(parts, strconv.FormatFloat(s.RunTime, 'g', -1, 64))
		if withStatus {
			st := StatusOK
			if s.Censored {
				st = StatusCensored
			}
			parts = append(parts, st.String())
		}
		if _, err := bw.WriteString(strings.Join(parts, ",") + "\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadCSV reads a dataset saved by SaveCSV, checking the header against
// the space's parameter names and every row against its level ranges.
// Both layouts load: the legacy one ending at run_time, and the
// failure-aware one with a trailing status column.
func LoadCSV(r io.Reader, spc *space.Space) (Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("search: empty dataset")
	}
	header := strings.Split(strings.TrimSpace(sc.Text()), ",")
	want := append(append([]string{}, spc.Names()...), "run_time")
	withStatus := len(header) == len(want)+1
	// Diagnostics cite 1-based file lines and columns (the header is
	// line 1), matching what editors and csv tooling display.
	if withStatus {
		if header[len(header)-1] != "status" {
			return nil, fmt.Errorf("search: line 1: header trailing column is %q, want %q",
				header[len(header)-1], "status")
		}
		header = header[:len(header)-1]
	}
	if len(header) != len(want) {
		return nil, fmt.Errorf("search: line 1: header has %d columns, space needs %d", len(header), len(want))
	}
	for i := range want {
		if header[i] != want[i] {
			return nil, fmt.Errorf("search: line 1: header column %d is %q, want %q", i+1, header[i], want[i])
		}
	}
	wantCols := len(want)
	if withStatus {
		wantCols++
	}

	var ds Dataset
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != wantCols {
			return nil, fmt.Errorf("search: line %d has %d columns, want %d", lineNo, len(parts), wantCols)
		}
		c := make(space.Config, spc.NumParams())
		for i := 0; i < spc.NumParams(); i++ {
			lv, err := strconv.Atoi(parts[i])
			if err != nil {
				return nil, fmt.Errorf("search: line %d column %d: %v", lineNo, i+1, err)
			}
			c[i] = lv
		}
		if err := spc.Validate(c); err != nil {
			return nil, fmt.Errorf("search: line %d: %w", lineNo, err)
		}
		y, err := strconv.ParseFloat(parts[len(want)-1], 64)
		if err != nil || y < 0 || math.IsNaN(y) || math.IsInf(y, 0) {
			return nil, fmt.Errorf("search: line %d: bad run time %q", lineNo, parts[len(want)-1])
		}
		smp := Sample{Config: c, RunTime: y}
		if withStatus {
			st, err := ParseStatus(parts[len(parts)-1])
			if err != nil {
				return nil, fmt.Errorf("search: line %d: %w", lineNo, err)
			}
			if st == StatusFailed {
				return nil, fmt.Errorf("search: line %d: failed rows carry no measurement and cannot be saved", lineNo)
			}
			smp.Censored = st == StatusCensored
		}
		ds = append(ds, smp)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(ds) == 0 {
		return nil, fmt.Errorf("search: dataset has a header but no rows")
	}
	return ds, nil
}
