package search

import (
	"context"
	"math"

	"repro/internal/rng"
	"repro/internal/space"
)

// Technique is an incremental search heuristic: it proposes
// configurations and receives the measured run times back. The
// Propose/Report protocol lets a meta-tuner (internal/opentuner)
// interleave several techniques on one evaluation budget, which is how
// OpenTuner structures its ensembles.
type Technique interface {
	Name() string
	// Propose returns the next configuration to evaluate; ok=false means
	// the technique has nothing more to try.
	Propose() (space.Config, bool)
	// Report feeds back the observed run time for a proposed config.
	Report(c space.Config, runTime float64)
}

// Drive runs a single technique against a problem for nmax evaluations,
// skipping configurations that were already evaluated. Failed
// evaluations consume budget and are recorded, but are not reported to
// the technique (it saw no measurement), so heuristics continue past
// failures without poisoning their internal state.
func Drive(ctx context.Context, p Problem, t Technique, nmax int) *Result {
	run := newRunner(p, t.Name())
	run.start(ctx)
	defer run.finish()
	seen := map[string]float64{}
	misses := 0
	for len(run.res.Records) < nmax && misses < 50*nmax && ctx.Err() == nil {
		c, ok := t.Propose()
		if !ok {
			break
		}
		if cached, dup := seen[c.Key()]; dup {
			// Feed the cached measurement back so the technique still
			// advances its internal state, without spending budget. A
			// cached failure (+Inf) is withheld the same as a live one.
			misses++
			run.tr.CacheHit(run.res.Algorithm, run.res.Problem, len(run.res.Records), c)
			if !math.IsInf(cached, 0) && !math.IsNaN(cached) {
				t.Report(c, cached)
			}
			continue
		}
		rec, ok := run.evaluate(ctx, c)
		if !ok {
			break
		}
		seen[c.Key()] = rec.RunTime
		if rec.Status != StatusFailed {
			t.Report(c, rec.RunTime)
		}
	}
	return run.res
}

// ---------------------------------------------------------------------------

// Anneal is simulated annealing over the configuration space: propose a
// random neighbor of the current point and accept by the Metropolis rule
// under a geometric cooling schedule.
type Anneal struct {
	spc     *space.Space
	r       *rng.RNG
	cur     space.Config
	curTime float64
	started bool
	temp    float64
	cooling float64
	pending space.Config
	start   space.Config
}

// NewAnneal returns a simulated-annealing technique. temp0 is the initial
// temperature as a fraction of the first observed run time; cooling is
// the per-step multiplier (e.g. 0.95).
func NewAnneal(spc *space.Space, r *rng.RNG, cooling float64) *Anneal {
	if cooling <= 0 || cooling >= 1 {
		cooling = 0.95
	}
	return &Anneal{spc: spc, r: r, cooling: cooling, temp: -1}
}

// Name implements Technique.
func (a *Anneal) Name() string { return "SA" }

// SetStart seeds the annealer's first proposal (a warm start, e.g. from
// a surrogate model's predicted best — the paper's future-work direction
// of combining transfer with more sophisticated search).
func (a *Anneal) SetStart(c space.Config) { a.start = c.Clone() }

// Propose implements Technique.
func (a *Anneal) Propose() (space.Config, bool) {
	if !a.started {
		if a.start != nil {
			a.pending = a.start
		} else {
			a.pending = a.spc.Random(a.r)
		}
	} else {
		a.pending = a.neighbor(a.cur)
	}
	return a.pending, true
}

// neighbor perturbs one parameter by one level (wrapping at the ends
// would bias toward boundaries, so it clamps instead).
func (a *Anneal) neighbor(c space.Config) space.Config {
	n := c.Clone()
	i := a.r.Intn(a.spc.NumParams())
	levels := a.spc.Param(i).Levels()
	if levels == 1 {
		return n
	}
	step := 1
	if a.r.Float64() < 0.3 {
		step = 1 + a.r.Intn(3) // occasional longer jumps
	}
	if a.r.Float64() < 0.5 {
		step = -step
	}
	v := n[i] + step
	if v < 0 {
		v = 0
	}
	if v >= levels {
		v = levels - 1
	}
	n[i] = v
	return n
}

// Report implements Technique.
func (a *Anneal) Report(c space.Config, runTime float64) {
	if !a.started {
		a.cur = c.Clone()
		a.curTime = runTime
		a.temp = runTime * 0.3
		a.started = true
		return
	}
	accept := runTime < a.curTime
	if !accept && a.temp > 0 {
		accept = a.r.Float64() < math.Exp(-(runTime-a.curTime)/a.temp)
	}
	if accept {
		a.cur = c.Clone()
		a.curTime = runTime
	}
	a.temp *= a.cooling
}

// ---------------------------------------------------------------------------

// Genetic is a steady-state genetic algorithm: tournament selection,
// uniform crossover, per-gene mutation, replace-worst insertion.
type Genetic struct {
	spc      *space.Space
	r        *rng.RNG
	popSize  int
	mutation float64
	pop      []gaMember
}

type gaMember struct {
	c       space.Config
	runTime float64
}

// NewGenetic returns a genetic-algorithm technique.
func NewGenetic(spc *space.Space, r *rng.RNG, popSize int, mutation float64) *Genetic {
	if popSize < 4 {
		popSize = 16
	}
	if mutation <= 0 || mutation >= 1 {
		mutation = 0.15
	}
	return &Genetic{spc: spc, r: r, popSize: popSize, mutation: mutation}
}

// Name implements Technique.
func (g *Genetic) Name() string { return "GA" }

// Propose implements Technique.
func (g *Genetic) Propose() (space.Config, bool) {
	if len(g.pop) < g.popSize {
		return g.spc.Random(g.r), true
	}
	p1 := g.tournament()
	p2 := g.tournament()
	child := make(space.Config, g.spc.NumParams())
	for i := range child {
		if g.r.Float64() < 0.5 {
			child[i] = p1.c[i]
		} else {
			child[i] = p2.c[i]
		}
		if g.r.Float64() < g.mutation {
			child[i] = g.r.Intn(g.spc.Param(i).Levels())
		}
	}
	return child, true
}

func (g *Genetic) tournament() gaMember {
	best := g.pop[g.r.Intn(len(g.pop))]
	for i := 0; i < 2; i++ {
		c := g.pop[g.r.Intn(len(g.pop))]
		if c.runTime < best.runTime {
			best = c
		}
	}
	return best
}

// Report implements Technique.
func (g *Genetic) Report(c space.Config, runTime float64) {
	m := gaMember{c: c.Clone(), runTime: runTime}
	if len(g.pop) < g.popSize {
		g.pop = append(g.pop, m)
		return
	}
	worst := 0
	for i := range g.pop {
		if g.pop[i].runTime > g.pop[worst].runTime {
			worst = i
		}
	}
	if m.runTime < g.pop[worst].runTime {
		g.pop[worst] = m
	}
}

// ---------------------------------------------------------------------------

// Pattern is coordinate pattern search (generalized pattern search on the
// level grid): poll +/- step along each parameter from the incumbent;
// move on success, halve the step on a full failed sweep.
type Pattern struct {
	spc     *space.Space
	r       *rng.RNG
	cur     space.Config
	curTime float64
	started bool
	step    int
	dim     int
	sign    int
	failed  int
}

// NewPattern returns a pattern-search technique with the given initial
// step in levels.
func NewPattern(spc *space.Space, r *rng.RNG, step int) *Pattern {
	if step < 1 {
		step = 4
	}
	return &Pattern{spc: spc, r: r, step: step, sign: 1}
}

// Name implements Technique.
func (p *Pattern) Name() string { return "PS" }

// Propose implements Technique.
func (p *Pattern) Propose() (space.Config, bool) {
	if !p.started {
		return p.spc.Random(p.r), true
	}
	if p.step < 1 {
		return nil, false
	}
	c := p.cur.Clone()
	levels := p.spc.Param(p.dim).Levels()
	v := c[p.dim] + p.sign*p.step
	if v < 0 {
		v = 0
	}
	if v >= levels {
		v = levels - 1
	}
	c[p.dim] = v
	return c, true
}

// Report implements Technique.
func (p *Pattern) Report(c space.Config, runTime float64) {
	if !p.started {
		p.cur = c.Clone()
		p.curTime = runTime
		p.started = true
		return
	}
	if runTime < p.curTime {
		p.cur = c.Clone()
		p.curTime = runTime
		p.failed = 0
	} else {
		p.failed++
	}
	// Advance the poll pattern: -> +dim, -dim, +dim+1, ...
	if p.sign == 1 {
		p.sign = -1
	} else {
		p.sign = 1
		p.dim = (p.dim + 1) % p.spc.NumParams()
	}
	if p.failed >= 2*p.spc.NumParams() {
		p.step /= 2
		p.failed = 0
	}
}

// ---------------------------------------------------------------------------

// RandomTechnique wraps uniform random sampling as a Technique so it can
// compete inside a meta-tuner ensemble.
type RandomTechnique struct {
	spc *space.Space
	r   *rng.RNG
}

// NewRandomTechnique returns the random-sampling technique.
func NewRandomTechnique(spc *space.Space, r *rng.RNG) *RandomTechnique {
	return &RandomTechnique{spc: spc, r: r}
}

// Name implements Technique.
func (t *RandomTechnique) Name() string { return "RAND" }

// Propose implements Technique.
func (t *RandomTechnique) Propose() (space.Config, bool) { return t.spc.Random(t.r), true }

// Report implements Technique.
func (t *RandomTechnique) Report(space.Config, float64) {}
