// Package search implements the search algorithms of the paper: random
// search without replacement (RS), the model-based pruning and biasing
// variants RSp and RSb (Algorithms 1 and 2), their model-free controls
// RSpf and RSbf, and — for the paper's future-work extension — simulated
// annealing, a genetic algorithm, and pattern search.
//
// All algorithms consume the Problem interface and produce a Result whose
// per-evaluation records carry the cumulative search clock, so the
// performance and search-time speedups of Section IV-D can be computed
// afterwards. Randomness comes exclusively from injected rng streams: two
// algorithms given samplers with the same seed draw identical candidate
// sequences, which implements the paper's common-random-numbers setup.
package search

import (
	"math"

	"repro/internal/rng"
	"repro/internal/space"
)

// Problem is an autotuning search problem: a configuration space plus an
// evaluator. Evaluate returns the measured run time of the configuration
// and the total cost charged to the search clock (compile + run).
type Problem interface {
	Name() string
	Space() *space.Space
	Evaluate(c space.Config) (runTime, cost float64)
}

// Record is one evaluated configuration, in evaluation order.
type Record struct {
	Config  space.Config
	RunTime float64
	Cost    float64
	// Elapsed is the cumulative search clock after this evaluation.
	Elapsed float64
}

// Result is the outcome of one search run.
type Result struct {
	Algorithm string
	Problem   string
	Records   []Record
	// Skipped counts configurations considered but not evaluated
	// (pruning strategies).
	Skipped int
}

// Best returns the record with the minimum run time and its index.
// It returns ok=false for an empty result.
func (r *Result) Best() (Record, int, bool) {
	if len(r.Records) == 0 {
		return Record{}, 0, false
	}
	best := 0
	for i, rec := range r.Records {
		if rec.RunTime < r.Records[best].RunTime {
			best = i
		}
	}
	return r.Records[best], best, true
}

// Elapsed returns the total search clock.
func (r *Result) Elapsed() float64 {
	if len(r.Records) == 0 {
		return 0
	}
	return r.Records[len(r.Records)-1].Elapsed
}

// TimeToReach returns the search clock at which the search first found a
// configuration with run time <= target, and whether it ever did.
func (r *Result) TimeToReach(target float64) (float64, bool) {
	for _, rec := range r.Records {
		if rec.RunTime <= target {
			return rec.Elapsed, true
		}
	}
	return 0, false
}

// BestSoFar returns the running minimum run time after each evaluation
// (the best-found trajectory plotted in Figures 3–5).
func (r *Result) BestSoFar() []float64 {
	out := make([]float64, len(r.Records))
	best := math.Inf(1)
	for i, rec := range r.Records {
		if rec.RunTime < best {
			best = rec.RunTime
		}
		out[i] = best
	}
	return out
}

// Dataset is a set of (configuration, run time) pairs collected on some
// machine — the paper's T_a.
type Dataset []Sample

// Sample is one element of a Dataset.
type Sample struct {
	Config  space.Config
	RunTime float64
}

// DatasetFrom extracts the training set T_a from a search result.
func DatasetFrom(res *Result) Dataset {
	ds := make(Dataset, len(res.Records))
	for i, rec := range res.Records {
		ds[i] = Sample{Config: rec.Config, RunTime: rec.RunTime}
	}
	return ds
}

// Encode converts the dataset into a feature matrix and target vector for
// model fitting under the space's encoding.
func (d Dataset) Encode(s *space.Space) (X [][]float64, y []float64) {
	X = make([][]float64, len(d))
	y = make([]float64, len(d))
	for i, smp := range d {
		X[i] = s.Encode(smp.Config)
		y[i] = smp.RunTime
	}
	return X, y
}

// runner accumulates evaluations into a Result.
type runner struct {
	p   Problem
	res *Result
}

func newRunner(p Problem, algorithm string) *runner {
	return &runner{p: p, res: &Result{Algorithm: algorithm, Problem: p.Name()}}
}

func (r *runner) evaluate(c space.Config) Record {
	run, cost := r.p.Evaluate(c)
	rec := Record{Config: c.Clone(), RunTime: run, Cost: cost, Elapsed: r.elapsed() + cost}
	r.res.Records = append(r.res.Records, rec)
	return rec
}

func (r *runner) elapsed() float64 {
	if n := len(r.res.Records); n > 0 {
		return r.res.Records[n-1].Elapsed
	}
	return 0
}

// RS runs random search without replacement for nmax evaluations (fewer
// if the space is exhausted). At iteration k every unevaluated
// configuration is equally likely to be drawn.
func RS(p Problem, nmax int, r *rng.RNG) *Result {
	run := newRunner(p, "RS")
	sampler := space.NewSampler(p.Space(), r)
	for len(run.res.Records) < nmax {
		c, ok := sampler.Next()
		if !ok {
			break
		}
		run.evaluate(c)
	}
	return run.res
}

// Replay evaluates exactly the given configurations in order — used for
// common-random-numbers comparisons and the model-free variants.
func Replay(p Problem, seq []space.Config, algorithm string) *Result {
	run := newRunner(p, algorithm)
	for _, c := range seq {
		run.evaluate(c)
	}
	return run.res
}

// Sequence returns the first n configurations an RS run with this stream
// would evaluate. Two calls with identically-seeded streams return the
// same sequence.
func Sequence(s *space.Space, n int, r *rng.RNG) []space.Config {
	sampler := space.NewSampler(s, r)
	out := make([]space.Config, 0, n)
	for len(out) < n {
		c, ok := sampler.Next()
		if !ok {
			break
		}
		out = append(out, c)
	}
	return out
}

// SampleBestOverTime returns the best-found run time at each of the
// given search-clock instants (the paper's figures plot best-so-far
// against elapsed search time, not evaluation count). Instants before
// the first evaluation completes yield +Inf.
func (r *Result) SampleBestOverTime(grid []float64) []float64 {
	out := make([]float64, len(grid))
	best := math.Inf(1)
	rec := 0
	for i, t := range grid {
		for rec < len(r.Records) && r.Records[rec].Elapsed <= t {
			if r.Records[rec].RunTime < best {
				best = r.Records[rec].RunTime
			}
			rec++
		}
		out[i] = best
	}
	return out
}
