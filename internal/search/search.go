// Package search implements the search algorithms of the paper: random
// search without replacement (RS), the model-based pruning and biasing
// variants RSp and RSb (Algorithms 1 and 2), their model-free controls
// RSpf and RSbf, and — for the paper's future-work extension — simulated
// annealing, a genetic algorithm, and pattern search.
//
// All algorithms consume the Problem interface and produce a Result whose
// per-evaluation records carry the cumulative search clock, so the
// performance and search-time speedups of Section IV-D can be computed
// afterwards. Randomness comes exclusively from injected rng streams: two
// algorithms given samplers with the same seed draw identical candidate
// sequences, which implements the paper's common-random-numbers setup.
package search

import (
	"context"
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/space"
)

// Problem is an autotuning search problem: a configuration space plus an
// evaluator. Evaluate returns the measured run time of the configuration
// and the total cost charged to the search clock (compile + run).
type Problem interface {
	Name() string
	Space() *space.Space
	Evaluate(c space.Config) (runTime, cost float64)
}

// Status classifies how an evaluation ended.
type Status uint8

const (
	// StatusOK is a clean measurement.
	StatusOK Status = iota
	// StatusCensored means the run hit the evaluator's timeout cap: the
	// recorded run time is the cap, a lower bound on the true time.
	StatusCensored
	// StatusFailed means the evaluation produced no measurement (compile
	// failure, or crashes that exhausted the retry budget).
	StatusFailed
)

// String renders the status as it appears in reports and saved datasets.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusCensored:
		return "censored"
	case StatusFailed:
		return "failed"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// ParseStatus is the inverse of Status.String.
func ParseStatus(s string) (Status, error) {
	switch s {
	case "ok":
		return StatusOK, nil
	case "censored":
		return StatusCensored, nil
	case "failed":
		return StatusFailed, nil
	}
	return StatusOK, fmt.Errorf("search: unknown status %q", s)
}

// Record is one evaluated configuration, in evaluation order.
type Record struct {
	Config  space.Config
	RunTime float64
	Cost    float64
	// Elapsed is the cumulative search clock after this evaluation.
	Elapsed float64
	// Status classifies the evaluation; the zero value is StatusOK, so
	// code built before the failure path behaves unchanged.
	Status Status
	// Retries counts how many extra attempts the evaluation needed.
	Retries int
}

// Measured reports whether the record carries a usable clean measurement:
// status ok and a finite run time. Censored and failed records are not
// candidates for "best found".
func (rec Record) Measured() bool {
	return rec.Status == StatusOK && !math.IsNaN(rec.RunTime) && !math.IsInf(rec.RunTime, 0)
}

// StatusLabel renders the record's status for reports, folding the retry
// count in ("ok", "retried-2", "censored", "failed").
func (rec Record) StatusLabel() string {
	if rec.Status == StatusOK && rec.Retries > 0 {
		return fmt.Sprintf("retried-%d", rec.Retries)
	}
	return rec.Status.String()
}

// Result is the outcome of one search run.
type Result struct {
	Algorithm string
	Problem   string
	Records   []Record
	// Skipped counts configurations considered but not evaluated
	// (pruning strategies).
	Skipped int
}

// Counts aggregates the per-status totals of a search run.
type Counts struct {
	OK       int // clean measurements (including retried ones)
	Censored int // runs clipped at the timeout cap
	Failed   int // evaluations that produced no measurement
	// Retried counts records that needed at least one retry; Retries is
	// the total number of extra attempts across the run.
	Retried int
	Retries int
}

// Total returns the number of evaluation records counted.
func (c Counts) Total() int { return c.OK + c.Censored + c.Failed }

// Counts tallies the result's records by status.
func (r *Result) Counts() Counts {
	var c Counts
	for _, rec := range r.Records {
		switch rec.Status {
		case StatusCensored:
			c.Censored++
		case StatusFailed:
			c.Failed++
		default:
			c.OK++
		}
		if rec.Retries > 0 {
			c.Retried++
			c.Retries += rec.Retries
		}
	}
	return c
}

// Best returns the measured record with the minimum run time and its
// index. Failed and censored records are skipped, as are non-finite run
// times (a NaN must not poison the min comparison); ok=false when no
// measured record exists.
func (r *Result) Best() (Record, int, bool) {
	best := -1
	for i, rec := range r.Records {
		if !rec.Measured() {
			continue
		}
		if best < 0 || rec.RunTime < r.Records[best].RunTime {
			best = i
		}
	}
	if best < 0 {
		return Record{}, 0, false
	}
	return r.Records[best], best, true
}

// Elapsed returns the total search clock.
func (r *Result) Elapsed() float64 {
	if len(r.Records) == 0 {
		return 0
	}
	return r.Records[len(r.Records)-1].Elapsed
}

// TimeToReach returns the search clock at which the search first found a
// measured configuration with run time <= target, and whether it ever
// did. Censored and failed records never count as reaching a target.
func (r *Result) TimeToReach(target float64) (float64, bool) {
	for _, rec := range r.Records {
		if rec.Measured() && rec.RunTime <= target {
			return rec.Elapsed, true
		}
	}
	return 0, false
}

// BestSoFar returns the running minimum measured run time after each
// evaluation (the best-found trajectory plotted in Figures 3–5). Entries
// before the first clean measurement are +Inf.
func (r *Result) BestSoFar() []float64 {
	out := make([]float64, len(r.Records))
	best := math.Inf(1)
	for i, rec := range r.Records {
		if rec.Measured() && rec.RunTime < best {
			best = rec.RunTime
		}
		out[i] = best
	}
	return out
}

// Dataset is a set of (configuration, run time) pairs collected on some
// machine — the paper's T_a.
type Dataset []Sample

// Sample is one element of a Dataset.
type Sample struct {
	Config  space.Config
	RunTime float64
	// Censored marks a run time clipped at a timeout cap: the true time
	// is at least RunTime. Censored rows round-trip through SaveCSV /
	// LoadCSV so transfer consumers can weigh them appropriately.
	Censored bool
}

// DatasetFrom extracts the training set T_a from a search result. Failed
// evaluations carry no measurement and are dropped; censored records are
// kept and flagged.
func DatasetFrom(res *Result) Dataset {
	ds := make(Dataset, 0, len(res.Records))
	for _, rec := range res.Records {
		if rec.Status == StatusFailed || math.IsNaN(rec.RunTime) || math.IsInf(rec.RunTime, 0) {
			continue
		}
		ds = append(ds, Sample{
			Config:   rec.Config,
			RunTime:  rec.RunTime,
			Censored: rec.Status == StatusCensored,
		})
	}
	return ds
}

// Valid returns the rows with finite run times — the subset safe to
// aggregate or fit models on. A NaN or Inf row (e.g. from a hand-built
// dataset or a failed evaluation) would otherwise silently poison fits
// and min comparisons.
func (d Dataset) Valid() Dataset {
	out := make(Dataset, 0, len(d))
	for _, s := range d {
		if math.IsNaN(s.RunTime) || math.IsInf(s.RunTime, 0) {
			continue
		}
		out = append(out, s)
	}
	return out
}

// Uncensored returns the rows that are both valid and not censored.
func (d Dataset) Uncensored() Dataset {
	out := make(Dataset, 0, len(d))
	for _, s := range d.Valid() {
		if !s.Censored {
			out = append(out, s)
		}
	}
	return out
}

// Encode converts the dataset into a feature matrix and target vector for
// model fitting under the space's encoding.
func (d Dataset) Encode(s *space.Space) (X [][]float64, y []float64) {
	X = make([][]float64, len(d))
	y = make([]float64, len(d))
	for i, smp := range d {
		X[i] = s.Encode(smp.Config)
		y[i] = smp.RunTime
	}
	return X, y
}

// runner accumulates evaluations into a Result.
type runner struct {
	p   Problem
	res *Result
	tr  *obs.Tracer
}

func newRunner(p Problem, algorithm string) *runner {
	return &runner{p: p, res: &Result{Algorithm: algorithm, Problem: p.Name()}}
}

// start binds the context's tracer (nil when telemetry is off) and opens
// the run's trace span. Every algorithm calls it once before its loop
// and pairs it with a deferred finish.
func (r *runner) start(ctx context.Context) {
	r.tr = obs.FromContext(ctx)
	r.tr.SearchStart(r.res.Algorithm, r.res.Problem)
}

// finish closes the run's trace span with its totals.
func (r *runner) finish() {
	if !r.tr.Enabled() {
		return
	}
	best := math.Inf(1)
	if rec, _, ok := r.res.Best(); ok {
		best = rec.RunTime
	}
	r.tr.SearchFinish(r.res.Algorithm, r.res.Problem,
		len(r.res.Records), r.res.Skipped, best, r.res.Elapsed())
}

// skip counts a candidate rejected by a pruning cutoff and traces the
// decision (prediction pred missed cutoff).
func (r *runner) skip(seq int, c space.Config, pred, cutoff float64) {
	r.res.Skipped++
	r.tr.Skip(r.res.Algorithm, r.res.Problem, seq, c, pred, cutoff)
}

// newRunnerWith seeds a runner with already-completed records (a journal
// prefix from a resumed run). The prior records' Elapsed values are
// trusted as the search clock baseline.
func newRunnerWith(p Problem, algorithm string, prior []Record) *runner {
	run := newRunner(p, algorithm)
	run.res.Records = append(run.res.Records, prior...)
	return run
}

// evaluate runs one configuration and appends its record. ok is false
// when the evaluation was interrupted by context cancellation: nothing
// is recorded (a half-finished attempt sequence must not enter the
// result, or a resumed run could never reproduce it) and the caller
// must stop the search.
func (r *runner) evaluate(ctx context.Context, c space.Config) (Record, bool) {
	out := EvaluateFull(ctx, r.p, c)
	if out.Interrupted() {
		return Record{}, false
	}
	rec := Record{
		Config: c.Clone(), RunTime: out.RunTime, Cost: out.Cost,
		Elapsed: r.elapsed() + out.Cost,
		Status:  out.Status, Retries: out.Retries,
	}
	r.res.Records = append(r.res.Records, rec)
	if r.tr.Enabled() {
		r.tr.Eval(r.res.Algorithm, r.res.Problem, len(r.res.Records)-1, rec.Config,
			rec.RunTime, rec.Cost, rec.Elapsed, rec.Status.String(), rec.Retries)
	}
	return rec, true
}

func (r *runner) elapsed() float64 {
	if n := len(r.res.Records); n > 0 {
		return r.res.Records[n-1].Elapsed
	}
	return 0
}

// RS runs random search without replacement for nmax evaluations (fewer
// if the space is exhausted). At iteration k every unevaluated
// configuration is equally likely to be drawn.
//
// Cancelling ctx drains the search gracefully: the in-flight evaluation
// finishes (or is dropped if it had not started), the partial Result is
// returned, and — because records are only ever appended between
// evaluations — the partial result is a bit-exact prefix of the
// uninterrupted run, which is what journal-based resumption depends on.
func RS(ctx context.Context, p Problem, nmax int, r *rng.RNG) *Result {
	return rsLoop(ctx, newRunner(p, "RS"), nmax, space.NewSampler(p.Space(), r))
}

// ResumeRS continues a partially-completed RS run from a checkpoint:
// prior holds the records already evaluated (typically recovered from a
// journal) and sampler must already exclude their configurations and
// carry the RNG state captured when the last prior record was drawn.
// The continuation draws exactly the configurations the uninterrupted
// run would have drawn next.
func ResumeRS(ctx context.Context, p Problem, nmax int, sampler *space.Sampler, prior []Record) *Result {
	return rsLoop(ctx, newRunnerWith(p, "RS", prior), nmax, sampler)
}

func rsLoop(ctx context.Context, run *runner, nmax int, sampler *space.Sampler) *Result {
	run.start(ctx)
	defer run.finish()
	for len(run.res.Records) < nmax && ctx.Err() == nil {
		c, ok := sampler.Next()
		if !ok {
			break
		}
		if _, ok := run.evaluate(ctx, c); !ok {
			break
		}
	}
	return run.res
}

// Replay evaluates exactly the given configurations in order — used for
// common-random-numbers comparisons and the model-free variants. Like
// RS, it stops cleanly between evaluations when ctx is cancelled.
func Replay(ctx context.Context, p Problem, seq []space.Config, algorithm string) *Result {
	run := newRunner(p, algorithm)
	run.start(ctx)
	defer run.finish()
	for _, c := range seq {
		if ctx.Err() != nil {
			break
		}
		if _, ok := run.evaluate(ctx, c); !ok {
			break
		}
	}
	return run.res
}

// Sequence returns the first n configurations an RS run with this stream
// would evaluate. Two calls with identically-seeded streams return the
// same sequence.
func Sequence(s *space.Space, n int, r *rng.RNG) []space.Config {
	sampler := space.NewSampler(s, r)
	out := make([]space.Config, 0, n)
	for len(out) < n {
		c, ok := sampler.Next()
		if !ok {
			break
		}
		out = append(out, c)
	}
	return out
}

// SampleBestOverTime returns the best-found run time at each of the
// given search-clock instants (the paper's figures plot best-so-far
// against elapsed search time, not evaluation count). Instants before
// the first evaluation completes yield +Inf.
func (r *Result) SampleBestOverTime(grid []float64) []float64 {
	out := make([]float64, len(grid))
	best := math.Inf(1)
	rec := 0
	for i, t := range grid {
		for rec < len(r.Records) && r.Records[rec].Elapsed <= t {
			if r.Records[rec].Measured() && r.Records[rec].RunTime < best {
				best = r.Records[rec].RunTime
			}
			rec++
		}
		out[i] = best
	}
	return out
}
