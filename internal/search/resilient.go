package search

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/space"
)

// Failure semantics. Real autotuning evaluations fail: configurations
// that do not compile, runs that crash, runs that exceed a time cap.
// FallibleProblem is the failure-aware evaluation interface; Resilient
// wraps one with retry and timeout budgets (charged to the search clock)
// and reduces every attempt sequence to a single Outcome the search
// runner records. Infallible Problems adapt via Fallible, so every search
// algorithm runs unchanged on both kinds.

// FallibleProblem is an autotuning problem whose evaluations can fail.
// TryEvaluate returns a non-nil error when the configuration produced no
// measurement; the cost returned alongside an error is still charged to
// the search clock (the time burned compiling or crashing is real).
type FallibleProblem interface {
	Name() string
	Space() *space.Space
	TryEvaluate(c space.Config) (runTime, cost float64, err error)
}

// transientError marks an evaluation error as worth retrying (a crash or
// flaky measurement, as opposed to a deterministic compile failure).
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err to mark it retryable. Fault sources (e.g.
// internal/faults) use it to distinguish crashes from compile failures.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}

// fallibleShim adapts an infallible Problem to FallibleProblem.
type fallibleShim struct{ p Problem }

func (s *fallibleShim) Name() string        { return s.p.Name() }
func (s *fallibleShim) Space() *space.Space { return s.p.Space() }
func (s *fallibleShim) Unwrap() Problem     { return s.p }
func (s *fallibleShim) TryEvaluate(c space.Config) (float64, float64, error) {
	run, cost := s.p.Evaluate(c)
	return run, cost, nil
}

// Fallible adapts a Problem to the fallible interface. Problems that
// already implement FallibleProblem are returned unchanged.
func Fallible(p Problem) FallibleProblem {
	if fp, ok := p.(FallibleProblem); ok {
		return fp
	}
	return &fallibleShim{p: p}
}

// Outcome is the reduced result of one (possibly retried) evaluation.
type Outcome struct {
	// RunTime is the measurement; the timeout cap for censored outcomes;
	// +Inf for failed ones.
	RunTime float64
	// Cost is the total search-clock charge: every attempt's compile and
	// run cost plus the retry backoff.
	Cost    float64
	Status  Status
	Retries int
	// Err is the final attempt's error for failed outcomes, nil otherwise.
	Err error
	// Degraded marks an outcome produced through a graceful-degradation
	// path (e.g. the evaluation broker falling back to inline execution
	// after quarantining every worker). The measurement itself is
	// untouched — degradation changes where the evaluation ran, never
	// what it returned — so Records deliberately do not carry the flag
	// and degraded runs stay bit-identical to healthy ones.
	Degraded bool
}

// ErrAborted marks an evaluator-initiated abort: the evaluation layer
// (e.g. a journal whose disk write failed, or a replay that detected a
// divergence) wants the search to stop immediately without recording
// anything. Wrap it with %w; Outcome.Interrupted treats it like a
// context cancellation.
var ErrAborted = errors.New("search: evaluation aborted")

// Interrupted reports that the evaluation was cut short — by context
// cancellation or an evaluator abort — rather than completed.
// Interrupted outcomes carry no usable measurement and must not be
// recorded: a record produced by a truncated attempt sequence would
// differ from the one an uninterrupted run produces, breaking bit-exact
// resumption.
func (o Outcome) Interrupted() bool {
	return errors.Is(o.Err, context.Canceled) ||
		errors.Is(o.Err, context.DeadlineExceeded) ||
		errors.Is(o.Err, ErrAborted)
}

// interrupted builds the sentinel outcome for a cancelled evaluation.
func interrupted(err error, cost float64) Outcome {
	return Outcome{RunTime: math.Inf(1), Cost: cost, Status: StatusFailed, Err: err}
}

// FullEvaluator exposes complete evaluation outcomes including failure
// status. The search runner uses it when a Problem implements it;
// Resilient is the canonical implementation.
type FullEvaluator interface {
	EvaluateFull(ctx context.Context, c space.Config) Outcome
}

// EvaluateFull evaluates c with full failure semantics when p supports
// them, and adapts a plain Evaluate otherwise (flagging a non-finite run
// time as failed rather than letting it poison downstream minima). A
// cancelled ctx yields an Interrupted outcome without evaluating.
func EvaluateFull(ctx context.Context, p Problem, c space.Config) Outcome {
	if err := ctx.Err(); err != nil {
		return interrupted(err, 0)
	}
	if fe, ok := p.(FullEvaluator); ok {
		return fe.EvaluateFull(ctx, c)
	}
	run, cost := p.Evaluate(c)
	if math.IsNaN(run) || math.IsInf(run, 0) {
		err := fmt.Errorf("search: non-finite run time %v", run)
		obs.FromContext(ctx).Fault(p.Name(), c, 0, err)
		return Outcome{RunTime: math.Inf(1), Cost: cost, Status: StatusFailed, Err: err}
	}
	return Outcome{RunTime: run, Cost: cost, Status: StatusOK}
}

// ResilientOptions are the retry and timeout budgets of a Resilient
// evaluator.
type ResilientOptions struct {
	// Retries is the maximum number of extra attempts after a transient
	// failure (default 2; negative disables retries). Non-transient
	// failures are never retried.
	Retries int
	// Timeout is the per-evaluation run-time cap in simulated seconds.
	// A run exceeding it is killed at the cap and recorded as censored.
	// 0 disables censoring.
	Timeout float64
	// Backoff is the pause charged to the search clock before retry k,
	// growing as Backoff*2^k (default 1s). A real harness waits before
	// re-running a crashed measurement; the clock must see that time.
	Backoff float64
}

func (o ResilientOptions) withDefaults() ResilientOptions {
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Backoff <= 0 {
		o.Backoff = 1
	}
	return o
}

// Resilient evaluates a fallible problem under bounded retries and a
// timeout cap. It implements both Problem and FullEvaluator, so every
// search algorithm in this package (and the opentuner ensemble) can run
// on it unchanged while their Results carry per-record status.
type Resilient struct {
	P   FallibleProblem
	Opt ResilientOptions
}

// NewResilient wraps p with the given budgets (zero value = defaults).
func NewResilient(p FallibleProblem, opt ResilientOptions) *Resilient {
	return &Resilient{P: p, Opt: opt.withDefaults()}
}

// Name implements Problem.
func (r *Resilient) Name() string { return r.P.Name() }

// Space implements Problem.
func (r *Resilient) Space() *space.Space { return r.P.Space() }

// Evaluate implements Problem for consumers that predate the failure
// path: failed evaluations surface as a +Inf run time.
func (r *Resilient) Evaluate(c space.Config) (runTime, cost float64) {
	//lint:ignore ctxflow legacy Problem bridge: the interface has no ctx to thread; the context path is EvaluateFull
	out := r.EvaluateFull(context.Background(), c)
	return out.RunTime, out.Cost
}

// EvaluateFull implements FullEvaluator: attempt the evaluation, retry
// transient failures within the budget (backoff charged to the clock),
// and censor run times at the timeout cap. Cancelling ctx stops the
// attempt sequence at the next attempt boundary with an Interrupted
// outcome (never a recorded failure), so a drained search stays a
// bit-exact prefix of the uninterrupted one.
func (r *Resilient) EvaluateFull(ctx context.Context, c space.Config) Outcome {
	opt := r.Opt.withDefaults()
	tr := obs.FromContext(ctx)
	total := 0.0
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			tr.Timeout(r.P.Name(), err)
			return interrupted(err, total)
		}
		run, cost, err := r.P.TryEvaluate(c)
		if err == nil {
			if opt.Timeout > 0 && run > opt.Timeout {
				// The run is killed at the cap: charge only the time
				// actually spent (compile + capped run), record the cap.
				tr.Censor(r.P.Name(), c, run, opt.Timeout)
				total += cost - (run - opt.Timeout)
				return Outcome{RunTime: opt.Timeout, Cost: total,
					Status: StatusCensored, Retries: attempt}
			}
			total += cost
			return Outcome{RunTime: run, Cost: total, Status: StatusOK, Retries: attempt}
		}
		total += cost
		tr.Fault(r.P.Name(), c, attempt, err)
		if !IsTransient(err) || attempt >= opt.Retries {
			return Outcome{RunTime: math.Inf(1), Cost: total,
				Status: StatusFailed, Retries: attempt, Err: err}
		}
		backoff := opt.Backoff * math.Pow(2, float64(attempt))
		tr.Retry(r.P.Name(), c, attempt, backoff, err)
		total += backoff
	}
}
