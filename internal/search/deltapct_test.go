package search

import (
	"context"
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/rng"
)

// sumModel is a trivial deterministic Model for validation tests.
type sumModel struct{}

func (sumModel) Predict(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

func TestNormalizeDeltaPct(t *testing.T) {
	cases := []struct {
		in       float64
		want     float64
		adjusted bool
	}{
		{0, 20, false},    // unset sentinel: default, no warning
		{20, 20, false},   // valid
		{0.5, 0.5, false}, // valid
		{99.9, 99.9, false},
		{math.NaN(), 20, true}, // the bug: NaN must not slip through
		{-5, 20, true},
		{100, 20, true},
		{250, 20, true},
		{math.Inf(1), 20, true},
	}
	for _, c := range cases {
		got, adj := NormalizeDeltaPct(c.in)
		if got != c.want || adj != c.adjusted {
			t.Errorf("NormalizeDeltaPct(%v) = (%v, %v), want (%v, %v)",
				c.in, got, adj, c.want, c.adjusted)
		}
	}
}

// TestRSpfOutOfRangeDeltaPctWarnsAndUsesDefault: RSpf must validate
// deltaPct the same way RSp does — replace out-of-range values
// (including NaN) with the default AND say so via a warning event,
// instead of rewriting silently.
func TestRSpfOutOfRangeDeltaPctWarnsAndUsesDefault(t *testing.T) {
	src := newBowl()
	ta := DatasetFrom(RS(context.Background(), src, 50, rng.New(51)))

	ref := RSpf(context.Background(), newBowl(), ta, 20)
	for _, bad := range []float64{math.NaN(), -3, 150} {
		sink := &obs.MemorySink{}
		ctx := obs.WithTracer(context.Background(), obs.New(sink))
		res := RSpf(ctx, newBowl(), ta, bad)
		if len(res.Records) != len(ref.Records) {
			t.Fatalf("deltaPct=%v: %d records, want %d (default behavior)",
				bad, len(res.Records), len(ref.Records))
		}
		warns := sink.ByKind(obs.KindWarning)
		if len(warns) != 1 || warns[0].Algo != "RSpf" {
			t.Fatalf("deltaPct=%v: want exactly one RSpf warning event, got %+v", bad, warns)
		}
	}
	// A valid value must not warn.
	sink := &obs.MemorySink{}
	ctx := obs.WithTracer(context.Background(), obs.New(sink))
	RSpf(ctx, newBowl(), ta, 20)
	if n := len(sink.ByKind(obs.KindWarning)); n != 0 {
		t.Fatalf("valid deltaPct warned %d times", n)
	}
}

// TestRSpOutOfRangeDeltaPctWarnsAndUsesDefault: same contract on the
// model-based pruning path.
func TestRSpOutOfRangeDeltaPctWarnsAndUsesDefault(t *testing.T) {
	opts := func(d float64) RSpOptions {
		return RSpOptions{NMax: 20, PoolSize: 200, DeltaPct: d}
	}
	ref := RSp(context.Background(), newBowl(), sumModel{}, opts(20), rng.New(7), rng.New(8))
	for _, bad := range []float64{math.NaN(), -3, 150} {
		sink := &obs.MemorySink{}
		ctx := obs.WithTracer(context.Background(), obs.New(sink))
		res := RSp(ctx, newBowl(), sumModel{}, opts(bad), rng.New(7), rng.New(8))
		if len(res.Records) != len(ref.Records) {
			t.Fatalf("deltaPct=%v: %d records, want %d (default behavior)",
				bad, len(res.Records), len(ref.Records))
		}
		warns := sink.ByKind(obs.KindWarning)
		if len(warns) != 1 || warns[0].Algo != "RSp" {
			t.Fatalf("deltaPct=%v: want exactly one RSp warning event, got %+v", bad, warns)
		}
	}
}
