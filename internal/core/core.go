// Package core implements the paper's central contribution: exploiting
// performance portability by carrying autotuning knowledge across
// machines. Performance data T_a collected on a source machine trains a
// random-forest surrogate M_a, which then guides random search on a
// different target machine through the pruning (RSp) and biasing (RSb)
// strategies; model-free controls (RSpf, RSbf) replay T_a directly.
//
// Run executes the complete experiment for one (source, target, problem)
// triple under the paper's common-random-numbers methodology (Section
// IV-D): RS on the target evaluates configurations in exactly the order
// RS evaluated them on the source, and RSp walks the same candidate
// stream, so differences between algorithms are attributable to the
// strategies rather than sampling luck.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/forest"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/search"
	"repro/internal/space"
	"repro/internal/stats"
)

// MinFitSamples is the smallest number of valid (finite) training rows
// FitSurrogate accepts. Below it a surrogate would be noise; callers
// should degrade to model-free search instead (Run does so
// automatically).
const MinFitSamples = 5

// ErrTooFewValid reports that a training set, after dropping failed and
// non-finite rows, is too small to fit a surrogate on. Run treats it as
// a signal to fall back to plain RS rather than a fatal error.
var ErrTooFewValid = errors.New("core: too few valid training samples")

// Surrogate is a performance model fitted to one machine's data and used
// to guide search on another, together with the space encoding it was
// trained under.
type Surrogate struct {
	Forest *forest.Forest
	Space  *space.Space
	// Source names the machine/problem the training data came from.
	Source string
}

// Predict implements search.Model. Like the forest it wraps, a fitted
// Surrogate is immutable and safe for concurrent prediction.
func (s *Surrogate) Predict(x []float64) float64 { return s.Forest.Predict(x) }

// PredictAll implements search.BatchModel by forwarding to the forest's
// sharded batch path, so the pool-scoring loops of RSp/RSb/RSbA engage
// worker-parallel prediction through the surrogate wrapper too.
func (s *Surrogate) PredictAll(X [][]float64) []float64 { return s.Forest.PredictAll(X) }

// FitSurrogate trains the random-forest surrogate M_a on T_a. Failed and
// non-finite rows are dropped first; censored rows are kept (the cap is
// an informative lower bound for ranking slow configurations). With
// fewer than MinFitSamples surviving rows it returns ErrTooFewValid.
func FitSurrogate(ta search.Dataset, spc *space.Space, source string, p forest.Params, r *rng.RNG) (*Surrogate, error) {
	ta = ta.Valid()
	if len(ta) < MinFitSamples {
		return nil, fmt.Errorf("%w: %d of %d needed (source %s)",
			ErrTooFewValid, len(ta), MinFitSamples, source)
	}
	X, y := ta.Encode(spc)
	f, err := forest.Fit(X, y, p, r)
	if err != nil {
		return nil, err
	}
	return &Surrogate{Forest: f, Space: spc, Source: source}, nil
}

// Collect runs plain RS on the source problem and returns both the full
// search result and the extracted training set T_a.
func Collect(ctx context.Context, src search.Problem, nmax int, r *rng.RNG) (*search.Result, search.Dataset) {
	res := search.RS(ctx, src, nmax, r)
	return res, search.DatasetFrom(res)
}

// Speedups are the paper's two comparison metrics for a variant against
// plain RS on the same target (Section IV-D).
type Speedups struct {
	// Performance is best-RS-run-time / best-variant-run-time.
	Performance float64
	// SearchTime is (clock at which RS found its best) / (clock at which
	// the variant first matched or beat RS's best); 0 when the variant
	// never got there, as in the paper's 0.00 table entries.
	SearchTime float64
	// Success follows the paper's criterion: performance speedup at least
	// 1.0 and search-time speedup strictly greater than 1.0.
	Success bool
}

// ComputeSpeedups compares a variant's search result to the RS baseline.
func ComputeSpeedups(rs, variant *search.Result) Speedups {
	rsBest, rsIdx, ok := rs.Best()
	if !ok {
		return Speedups{}
	}
	vBest, _, ok := variant.Best()
	if !ok {
		return Speedups{}
	}
	s := Speedups{}
	if vBest.RunTime > 0 {
		s.Performance = rsBest.RunTime / vBest.RunTime
	}
	rsTime := rs.Records[rsIdx].Elapsed
	if t, reached := variant.TimeToReach(rsBest.RunTime); reached && t > 0 {
		s.SearchTime = rsTime / t
	}
	s.Success = s.Performance >= 1.0 && s.SearchTime > 1.0
	return s
}

// Options configures a transfer experiment.
type Options struct {
	// NMax is the per-algorithm evaluation budget (paper: 100).
	NMax int
	// PoolSize is the configuration pool size N (paper: 10,000).
	PoolSize int
	// DeltaPct is the pruning cutoff quantile (paper: 20).
	DeltaPct float64
	// Forest configures the surrogate (zero value = package defaults).
	Forest forest.Params
	// Seed drives every random stream of the experiment.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.NMax <= 0 {
		o.NMax = 100
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 10000
	}
	// Shared validation with RSp/RSpf: rejects NaN and out-of-range
	// values, not just negatives (Run warns when a value was replaced).
	o.DeltaPct, _ = search.NormalizeDeltaPct(o.DeltaPct)
	return o
}

// Outcome is the full result of one transfer experiment.
type Outcome struct {
	Source, Target string

	// SourceRS is the RS run on the source machine that produced Ta.
	SourceRS *search.Result
	Ta       search.Dataset

	// Target-machine runs under common random numbers.
	RS   *search.Result
	RSp  *search.Result
	RSb  *search.Result
	RSpf *search.Result
	RSbf *search.Result

	// Speedups of each variant over RS, keyed by algorithm name.
	Speedups map[string]Speedups

	// Paired run times of Ta's configurations on source and target (the
	// correlation panels of Figures 3–5) and their correlations. Pairs
	// where either side failed are excluded.
	SourceRuns, TargetRuns []float64
	Pearson, Spearman      float64

	// Surrogate quality on the target: rank correlation between M_a's
	// predictions and the target's measured times over Ta's configs.
	SurrogateSpearman float64

	// Degraded reports that the surrogate could not be fit (too many
	// failed source evaluations) and the model-based variants fell back
	// to plain RS; Warnings carries the structured explanation.
	Degraded bool
	Warnings []string

	// FailureCounts tallies evaluation statuses per run, keyed like
	// Speedups plus "SourceRS" and "RS".
	FailureCounts map[string]search.Counts
}

// Run executes the transfer experiment: collect Ta on the source, fit
// M_a, then run RS and all four variants on the target under common
// random numbers, and compute the paper's metrics. Cancelling ctx
// drains whichever search phase is running between evaluations; the
// partial outcome is still internally consistent, but callers should
// treat it as incomplete (check ctx.Err after Run returns).
func Run(ctx context.Context, src, tgt search.Problem, opt Options) (*Outcome, error) {
	origDelta := opt.DeltaPct
	if _, adjusted := search.NormalizeDeltaPct(origDelta); adjusted {
		obs.FromContext(ctx).Warn("core.Run",
			fmt.Sprintf("DeltaPct %g outside (0,100); using default %g", origDelta, float64(search.DefaultDeltaPct)))
	}
	opt = opt.withDefaults()
	if src.Space().NumParams() != tgt.Space().NumParams() {
		return nil, fmt.Errorf("core: source and target must share the configuration space (paper assumption D(α) fixed)")
	}

	out := &Outcome{Source: src.Name(), Target: tgt.Name(), Speedups: map[string]Speedups{}}

	// Phase 1: collect Ta on the source machine with the shared stream.
	streamSeed := rng.NewNamed(opt.Seed, "crn-stream")
	out.SourceRS, out.Ta = Collect(ctx, src, opt.NMax, streamSeed)

	// Phase 2: fit the surrogate. When the source search lost too many
	// evaluations to failures, the surrogate cannot be trusted; instead
	// of erroring, degrade gracefully to model-free search.
	tr := obs.FromContext(ctx)
	sur, err := FitSurrogate(out.Ta, src.Space(), src.Name(), opt.Forest, rng.NewNamed(opt.Seed, "forest"))
	if err != nil {
		if !errors.Is(err, ErrTooFewValid) {
			return nil, err
		}
		out.Degraded = true
		warning := fmt.Sprintf(
			"surrogate unavailable (%v); RSp and RSb fall back to plain RS", err)
		out.Warnings = append(out.Warnings, warning)
		tr.Degraded(warning)
		sur = nil
	} else if tr.Enabled() {
		rows, dur := sur.Forest.FitStats()
		tr.ModelFit(src.Name(), rows, dur)
	}

	// Phase 3: target runs.
	// RS on the target evaluates the same configurations in the same
	// order as RS on the source (method of common random numbers).
	srcSeq := make([]space.Config, len(out.SourceRS.Records))
	for i, rec := range out.SourceRS.Records {
		srcSeq[i] = rec.Config
	}
	out.RS = search.Replay(ctx, tgt, srcSeq, "RS")

	if sur != nil {
		// RSp walks the same candidate stream as RS (fresh
		// identically-seeded stream) and prunes with the surrogate.
		out.RSp = search.RSp(ctx, tgt, sur,
			search.RSpOptions{NMax: opt.NMax, PoolSize: opt.PoolSize, DeltaPct: opt.DeltaPct},
			rng.NewNamed(opt.Seed, "crn-stream"), rng.NewNamed(opt.Seed, "pool"))

		// RSb greedily evaluates the pool in ascending predicted order.
		out.RSb = search.RSb(ctx, tgt, sur,
			search.RSbOptions{NMax: opt.NMax, PoolSize: opt.PoolSize},
			rng.NewNamed(opt.Seed, "pool"))
	} else {
		// Fallback: plain RS on the variants' own streams, so the
		// experiment still yields five complete runs (the variants just
		// bring no knowledge).
		out.RSp = search.RS(ctx, tgt, opt.NMax, rng.NewNamed(opt.Seed, "crn-stream"))
		out.RSp.Algorithm = "RSp(RS-fallback)"
		out.RSb = search.RS(ctx, tgt, opt.NMax, rng.NewNamed(opt.Seed, "pool"))
		out.RSb.Algorithm = "RSb(RS-fallback)"
	}

	// Model-free controls restricted to Ta (empty Ta yields empty runs).
	out.RSpf = search.RSpf(ctx, tgt, out.Ta, opt.DeltaPct)
	out.RSbf = search.RSbf(ctx, tgt, out.Ta)

	for name, res := range map[string]*search.Result{
		"RSp": out.RSp, "RSb": out.RSb, "RSpf": out.RSpf, "RSbf": out.RSbf,
	} {
		out.Speedups[name] = ComputeSpeedups(out.RS, res)
	}
	out.FailureCounts = map[string]search.Counts{
		"SourceRS": out.SourceRS.Counts(), "RS": out.RS.Counts(),
		"RSp": out.RSp.Counts(), "RSb": out.RSb.Counts(),
		"RSpf": out.RSpf.Counts(), "RSbf": out.RSbf.Counts(),
	}

	// Correlation panel: the RS replay re-evaluated every source
	// configuration on the target, giving exact pairs; pairs where
	// either side failed to measure are dropped.
	for i, srcRec := range out.SourceRS.Records {
		if i >= len(out.RS.Records) {
			break // replay drained early by cancellation
		}
		tgtRec := out.RS.Records[i]
		if !srcRec.Measured() || !tgtRec.Measured() {
			continue
		}
		out.SourceRuns = append(out.SourceRuns, srcRec.RunTime)
		out.TargetRuns = append(out.TargetRuns, tgtRec.RunTime)
	}
	if p, err := stats.Pearson(out.SourceRuns, out.TargetRuns); err == nil {
		out.Pearson = p
	}
	if s, err := stats.Spearman(out.SourceRuns, out.TargetRuns); err == nil {
		out.Spearman = s
	}
	if sur != nil {
		var preds, tgtRuns []float64
		for i, srcRec := range out.SourceRS.Records {
			if i >= len(out.RS.Records) {
				break
			}
			tgtRec := out.RS.Records[i]
			if !srcRec.Measured() || !tgtRec.Measured() {
				continue
			}
			preds = append(preds, sur.Predict(tgt.Space().Encode(srcRec.Config)))
			tgtRuns = append(tgtRuns, tgtRec.RunTime)
		}
		if s, err := stats.Spearman(preds, tgtRuns); err == nil {
			out.SurrogateSpearman = s
		}
	}

	return out, nil
}
