package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/faults"
	"repro/internal/forest"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/search"
	"repro/internal/sim"
	"repro/internal/space"
)

func problem(t *testing.T, kernel string, m machine.Machine) search.Problem {
	t.Helper()
	k, err := kernels.ByName(kernel)
	if err != nil {
		t.Fatal(err)
	}
	return kernels.NewProblem(k, sim.Target{Machine: m, Compiler: machine.GNU, Threads: 1})
}

// smallOpts keeps unit tests fast; the full-scale settings live in the
// experiments package.
func smallOpts(seed uint64) Options {
	return Options{
		NMax:     40,
		PoolSize: 1500,
		DeltaPct: 20,
		Forest:   forest.Params{Trees: 40},
		Seed:     seed,
	}
}

func TestRunProducesCompleteOutcome(t *testing.T) {
	out, err := Run(context.Background(), problem(t, "LU", machine.Westmere), problem(t, "LU", machine.Sandybridge), smallOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Ta) != 40 {
		t.Fatalf("Ta size %d", len(out.Ta))
	}
	if len(out.RS.Records) != 40 {
		t.Fatalf("target RS evaluated %d", len(out.RS.Records))
	}
	if len(out.RSb.Records) != 40 {
		t.Fatalf("RSb evaluated %d", len(out.RSb.Records))
	}
	for _, name := range []string{"RSp", "RSb", "RSpf", "RSbf"} {
		if _, ok := out.Speedups[name]; !ok {
			t.Fatalf("missing speedups for %s", name)
		}
	}
	if len(out.SourceRuns) != len(out.TargetRuns) {
		t.Fatal("correlation pairs mismatched")
	}
}

func TestCommonRandomNumbers(t *testing.T) {
	// The target RS must evaluate exactly the configurations of Ta, in
	// Ta's order — the paper's variance-reduction setup.
	out, err := Run(context.Background(), problem(t, "LU", machine.Westmere), problem(t, "LU", machine.Sandybridge), smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Ta {
		if out.Ta[i].Config.Key() != out.RS.Records[i].Config.Key() {
			t.Fatal("target RS order deviates from source RS order")
		}
	}
}

func TestDeterministicOutcome(t *testing.T) {
	a, err := Run(context.Background(), problem(t, "LU", machine.Westmere), problem(t, "LU", machine.Sandybridge), smallOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), problem(t, "LU", machine.Westmere), problem(t, "LU", machine.Sandybridge), smallOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Pearson != b.Pearson || a.Speedups["RSb"] != b.Speedups["RSb"] {
		t.Fatal("transfer experiment not deterministic under the same seed")
	}
}

// fullOpts runs at the paper's scale with a trimmed pool for test speed.
func fullOpts(seed uint64) Options {
	return Options{
		NMax:     100,
		PoolSize: 4000,
		DeltaPct: 20,
		Forest:   forest.Params{Trees: 60},
		Seed:     seed,
	}
}

func TestIntelPairCorrelatesAndRSbWins(t *testing.T) {
	// Westmere -> Sandybridge on LU: the paper's headline case. The
	// correlation must be strong and RSb must succeed.
	out, err := Run(context.Background(), problem(t, "LU", machine.Westmere), problem(t, "LU", machine.Sandybridge), fullOpts(2016))
	if err != nil {
		t.Fatal(err)
	}
	if out.Pearson < 0.8 || out.Spearman < 0.8 {
		t.Fatalf("Intel pair correlation too weak: pearson=%.3f spearman=%.3f",
			out.Pearson, out.Spearman)
	}
	sb := out.Speedups["RSb"]
	if sb.SearchTime <= 1.5 {
		t.Fatalf("RSb search-time speedup %.2f, expected clearly > 1 on correlated machines", sb.SearchTime)
	}
	if sb.Performance < 1.0 {
		t.Fatalf("RSb performance speedup %.3f, expected >= 1", sb.Performance)
	}
}

func TestBiasingBeatsPruning(t *testing.T) {
	// Averaged over seeds at the paper's budget, RSb must dominate RSp in
	// search-time speedup (the paper's "biasing is better than pruning").
	var sumB, sumP float64
	seeds := []uint64{1, 2, 3}
	for _, seed := range seeds {
		out, err := Run(context.Background(), problem(t, "LU", machine.Westmere), problem(t, "LU", machine.Sandybridge), fullOpts(seed))
		if err != nil {
			t.Fatal(err)
		}
		sumB += out.Speedups["RSb"].SearchTime
		sumP += out.Speedups["RSp"].SearchTime
	}
	if sumB <= sumP {
		t.Fatalf("mean RSb search speedup (%.1f) not above RSp (%.1f)",
			sumB/float64(len(seeds)), sumP/float64(len(seeds)))
	}
}

func TestModelFreeVariantsRestrictedToTa(t *testing.T) {
	out, err := Run(context.Background(), problem(t, "MM", machine.Westmere), problem(t, "MM", machine.Sandybridge), smallOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	inTa := map[string]bool{}
	for _, s := range out.Ta {
		inTa[s.Config.Key()] = true
	}
	for _, rec := range append(out.RSpf.Records, out.RSbf.Records...) {
		if !inTa[rec.Config.Key()] {
			t.Fatal("model-free variant escaped Ta")
		}
	}
	// RSbf evaluates all of Ta, so its best equals RS's best run time
	// exactly (same configs, same machine): performance speedup is 1.
	perf := out.Speedups["RSbf"].Performance
	if perf < 0.999 || perf > 1.001 {
		t.Fatalf("RSbf performance speedup = %.4f, must be 1 (same 100 configs as RS)", perf)
	}
}

func TestRSbfOrderedBySourceTime(t *testing.T) {
	out, err := Run(context.Background(), problem(t, "LU", machine.Westmere), problem(t, "LU", machine.Sandybridge), smallOpts(6))
	if err != nil {
		t.Fatal(err)
	}
	srcTime := map[string]float64{}
	for _, s := range out.Ta {
		srcTime[s.Config.Key()] = s.RunTime
	}
	prev := -1.0
	for _, rec := range out.RSbf.Records {
		st := srcTime[rec.Config.Key()]
		if st < prev {
			t.Fatal("RSbf not ordered by source run time")
		}
		prev = st
	}
}

func TestTransferFailsOnXGene(t *testing.T) {
	// Sandybridge -> X-Gene: the paper found no significant performance
	// speedups (its LU row reads 1.00), and the run-time correlation
	// collapses. Check both across seeds.
	var sumPerf, sumCorr float64
	seeds := []uint64{1, 2, 3}
	for _, seed := range seeds {
		out, err := Run(context.Background(), problem(t, "LU", machine.Sandybridge), problem(t, "LU", machine.XGene), fullOpts(seed))
		if err != nil {
			t.Fatal(err)
		}
		sumPerf += out.Speedups["RSb"].Performance
		sumCorr += out.Spearman
	}
	meanPerf := sumPerf / float64(len(seeds))
	meanCorr := sumCorr / float64(len(seeds))
	if meanPerf > 1.15 {
		t.Fatalf("X-Gene mean RSb performance speedup %.2f; paper reports ~1.00", meanPerf)
	}
	if meanCorr > 0.5 {
		t.Fatalf("X-Gene mean rank correlation %.2f; should have collapsed", meanCorr)
	}
}

func TestComputeSpeedupsPaperExample(t *testing.T) {
	// The defining example of Section IV-D: RS finds run time 5 at clock
	// 100; RSb finds run time 3 at clock 80, passing run time <= 5 at
	// clock 50. Performance speedup 5/3, search-time speedup 2.
	rs := &search.Result{Records: []search.Record{
		{Config: space.Config{0}, RunTime: 9, Elapsed: 40},
		{Config: space.Config{1}, RunTime: 5, Elapsed: 100},
	}}
	rsb := &search.Result{Records: []search.Record{
		{Config: space.Config{2}, RunTime: 5, Elapsed: 50},
		{Config: space.Config{3}, RunTime: 3, Elapsed: 80},
	}}
	s := ComputeSpeedups(rs, rsb)
	if s.Performance < 1.66 || s.Performance > 1.67 {
		t.Fatalf("performance speedup = %v, want 5/3", s.Performance)
	}
	if s.SearchTime != 2 {
		t.Fatalf("search speedup = %v, want 2", s.SearchTime)
	}
	if !s.Success {
		t.Fatal("paper example should be a success")
	}
}

func TestComputeSpeedupsNeverReached(t *testing.T) {
	rs := &search.Result{Records: []search.Record{
		{Config: space.Config{0}, RunTime: 5, Elapsed: 100},
	}}
	bad := &search.Result{Records: []search.Record{
		{Config: space.Config{1}, RunTime: 8, Elapsed: 10},
	}}
	s := ComputeSpeedups(rs, bad)
	if s.SearchTime != 0 {
		t.Fatalf("unreached target must give 0 search speedup (paper's 0.00 entries), got %v", s.SearchTime)
	}
	if s.Success {
		t.Fatal("failure marked successful")
	}
}

func TestFitSurrogateErrors(t *testing.T) {
	spc := space.New(space.NewBoolean("x"))
	if _, err := FitSurrogate(nil, spc, "src", forest.Params{}, rng.New(1)); err == nil {
		t.Fatal("empty Ta accepted")
	}
}

func TestMismatchedSpacesRejected(t *testing.T) {
	mm := problem(t, "MM", machine.Westmere)
	lu := problem(t, "LU", machine.Sandybridge)
	if _, err := Run(context.Background(), mm, lu, smallOpts(7)); err == nil {
		t.Fatal("cross-kernel transfer with different spaces accepted")
	}
}

func TestSurrogateTracksTarget(t *testing.T) {
	out, err := Run(context.Background(), problem(t, "LU", machine.Westmere), problem(t, "LU", machine.Sandybridge), smallOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if out.SurrogateSpearman < 0.5 {
		t.Fatalf("surrogate rank correlation with target = %.3f, too weak", out.SurrogateSpearman)
	}
}

func mustMachine(t *testing.T, name string) machine.Machine {
	t.Helper()
	m, err := machine.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOutcomeInternalConsistency(t *testing.T) {
	out, err := Run(context.Background(), problem(t, "COR", machine.Westmere), problem(t, "COR", machine.Sandybridge), smallOpts(41))
	if err != nil {
		t.Fatal(err)
	}
	// RSpf's evaluated + skipped must cover Ta exactly.
	if len(out.RSpf.Records)+out.RSpf.Skipped != len(out.Ta) {
		t.Fatalf("RSpf covered %d+%d of %d", len(out.RSpf.Records), out.RSpf.Skipped, len(out.Ta))
	}
	// RSbf evaluates exactly Ta.
	if len(out.RSbf.Records) != len(out.Ta) {
		t.Fatalf("RSbf evaluated %d of %d", len(out.RSbf.Records), len(out.Ta))
	}
	// Source runs pair with target runs index-by-index.
	for i := range out.SourceRuns {
		if out.SourceRuns[i] != out.Ta[i].RunTime {
			t.Fatal("source run pairing broken")
		}
	}
	// Every variant's clock is strictly increasing.
	for _, res := range []*search.Result{out.RS, out.RSp, out.RSb, out.RSpf, out.RSbf} {
		prev := 0.0
		for _, rec := range res.Records {
			if rec.Elapsed <= prev {
				t.Fatalf("%s clock not increasing", res.Algorithm)
			}
			prev = rec.Elapsed
		}
	}
}

func TestFitSurrogateRejectsTooFewValid(t *testing.T) {
	spc := space.New(space.NewIntRange("x", 0, 9))
	ta := search.Dataset{
		{Config: space.Config{1}, RunTime: 1},
		{Config: space.Config{2}, RunTime: math.Inf(1)},
		{Config: space.Config{3}, RunTime: math.NaN()},
	}
	_, err := FitSurrogate(ta, spc, "test", forest.Params{Trees: 5}, rng.New(1))
	if !errors.Is(err, ErrTooFewValid) {
		t.Fatalf("want ErrTooFewValid, got %v", err)
	}
}

func TestTransferFallsBackWhenSourceFails(t *testing.T) {
	// Near-total compile failure on the source machine: too few valid
	// rows survive to fit the surrogate, so Transfer must degrade to
	// plain RS — with a warning — rather than error out.
	src := search.NewResilient(
		faults.Wrap(problem(t, "LU", machine.Westmere), faults.Rates{CompileFail: 0.97}, 77),
		search.ResilientOptions{Retries: 1})
	out, err := Run(context.Background(), src, problem(t, "LU", machine.Sandybridge), smallOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Degraded {
		t.Fatal("97% source failure did not trigger degraded mode")
	}
	if len(out.Warnings) == 0 {
		t.Fatal("degraded outcome carries no warning")
	}
	if out.FailureCounts["SourceRS"].Failed == 0 {
		t.Fatal("failure counts not recorded for the source run")
	}
	// All five variants still produced results. RSpf/RSbf are restricted
	// to Ta, which an all-failed source leaves empty, so they may hold
	// zero records — but must not be nil.
	for name, res := range map[string]*search.Result{
		"RS": out.RS, "RSp": out.RSp, "RSb": out.RSb, "RSpf": out.RSpf, "RSbf": out.RSbf,
	} {
		if res == nil {
			t.Fatalf("variant %s missing after fallback", name)
		}
	}
	for name, res := range map[string]*search.Result{"RS": out.RS, "RSp": out.RSp, "RSb": out.RSb} {
		if len(res.Records) == 0 {
			t.Fatalf("variant %s evaluated nothing after fallback", name)
		}
	}
	if out.RSp.Algorithm != "RSp(RS-fallback)" || out.RSb.Algorithm != "RSb(RS-fallback)" {
		t.Fatalf("fallback not labelled: %q / %q", out.RSp.Algorithm, out.RSb.Algorithm)
	}
	for name := range out.Speedups {
		if _, ok := out.Speedups[name]; !ok {
			t.Fatalf("missing speedups for %s", name)
		}
	}
}

func TestRunWithModerateFaultsStaysConsistent(t *testing.T) {
	// A 30% failure rate on both machines: every variant completes, the
	// correlation panel stays index-paired, and best-found values are
	// finite.
	wrap := func(p search.Problem, seed uint64) search.Problem {
		return search.NewResilient(
			faults.Wrap(p, faults.Profile(p.Name()).ScaledTo(0.30), seed),
			search.ResilientOptions{Retries: 2, Backoff: 0.5})
	}
	out, err := Run(context.Background(),
		wrap(problem(t, "LU", machine.Westmere), 5),
		wrap(problem(t, "LU", machine.Sandybridge), 6),
		smallOpts(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.SourceRuns) != len(out.TargetRuns) {
		t.Fatal("correlation pairs mismatched under faults")
	}
	for _, run := range append(append([]float64{}, out.SourceRuns...), out.TargetRuns...) {
		if math.IsNaN(run) || math.IsInf(run, 0) {
			t.Fatal("non-finite run in correlation panel")
		}
	}
	for name, res := range map[string]*search.Result{
		"RS": out.RS, "RSp": out.RSp, "RSb": out.RSb, "RSpf": out.RSpf, "RSbf": out.RSbf,
	} {
		if best, _, ok := res.Best(); ok {
			if math.IsNaN(best.RunTime) || math.IsInf(best.RunTime, 0) {
				t.Fatalf("%s best is non-finite", name)
			}
		}
		counts, want := out.FailureCounts[name], res.Counts()
		if counts != want {
			t.Fatalf("%s failure counts stale: %+v vs %+v", name, counts, want)
		}
	}
}
