package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/forest"
	"repro/internal/rng"
	"repro/internal/search"
	"repro/internal/space"
)

// This file provides alternative surrogate families used by the ablation
// studies (DESIGN.md section 5): the paper chooses random forests, citing
// earlier work; the ablations quantify that choice against a k-nearest-
// neighbor model, an ordinary least-squares linear model, and a single
// CART tree.

// KNNModel predicts by averaging the k nearest training points under
// per-feature normalized Euclidean distance.
type KNNModel struct {
	X     [][]float64
	Y     []float64
	K     int
	scale []float64
}

// FitKNN builds a k-NN surrogate from a dataset. Non-finite rows are
// dropped before fitting.
func FitKNN(ta search.Dataset, spc *space.Space, k int) (*KNNModel, error) {
	if ta = ta.Valid(); len(ta) == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	if k < 1 {
		k = 5
	}
	if k > len(ta) {
		k = len(ta)
	}
	X, y := ta.Encode(spc)
	nf := len(X[0])
	scale := make([]float64, nf)
	for f := 0; f < nf; f++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, row := range X {
			lo = math.Min(lo, row[f])
			hi = math.Max(hi, row[f])
		}
		if hi > lo {
			scale[f] = 1 / (hi - lo)
		}
	}
	return &KNNModel{X: X, Y: y, K: k, scale: scale}, nil
}

// Predict implements search.Model. The distance scratch is allocated
// per call and the fitted fields are never written after FitKNN, so
// Predict is safe for concurrent use.
func (m *KNNModel) Predict(x []float64) float64 {
	type nd struct {
		d float64
		y float64
	}
	ds := make([]nd, len(m.X))
	for i, row := range m.X {
		d := 0.0
		for f := range row {
			diff := (row[f] - x[f]) * m.scale[f]
			d += diff * diff
		}
		ds[i] = nd{d: d, y: m.Y[i]}
	}
	//lint:ignore floatcmp distances are sums of squares of finite encoded features; no NaN can enter
	sort.Slice(ds, func(a, b int) bool { return ds[a].d < ds[b].d })
	sum := 0.0
	for i := 0; i < m.K; i++ {
		sum += ds[i].y
	}
	return sum / float64(m.K)
}

// LinearModel is ordinary least squares with an intercept, solved by
// normal equations with a small ridge term for stability.
type LinearModel struct {
	w []float64 // intercept first
}

// FitLinear fits the linear surrogate. Non-finite rows are dropped
// before fitting.
func FitLinear(ta search.Dataset, spc *space.Space) (*LinearModel, error) {
	if ta = ta.Valid(); len(ta) == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	X, y := ta.Encode(spc)
	n := len(X)
	p := len(X[0]) + 1

	// Build A = X'X + lambda*I and b = X'y over the augmented design.
	A := make([][]float64, p)
	for i := range A {
		A[i] = make([]float64, p)
	}
	b := make([]float64, p)
	row := make([]float64, p)
	for i := 0; i < n; i++ {
		row[0] = 1
		copy(row[1:], X[i])
		for r := 0; r < p; r++ {
			b[r] += row[r] * y[i]
			for c := 0; c < p; c++ {
				A[r][c] += row[r] * row[c]
			}
		}
	}
	lambda := 1e-8 * float64(n)
	for i := 0; i < p; i++ {
		A[i][i] += lambda
	}

	w, err := solve(A, b)
	if err != nil {
		return nil, err
	}
	return &LinearModel{w: w}, nil
}

// solve performs Gaussian elimination with partial pivoting.
func solve(A [][]float64, b []float64) ([]float64, error) {
	n := len(A)
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(A[pivot][col]) < 1e-14 {
			return nil, fmt.Errorf("core: singular design matrix")
		}
		A[col], A[pivot] = A[pivot], A[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := col + 1; r < n; r++ {
			f := A[r][col] / A[col][col]
			for c := col; c < n; c++ {
				A[r][c] -= f * A[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= A[r][c] * x[c]
		}
		x[r] = s / A[r][r]
	}
	return x, nil
}

// Predict implements search.Model. It only reads the fitted weights, so
// it is safe for concurrent use.
func (m *LinearModel) Predict(x []float64) float64 {
	v := m.w[0]
	for i, xi := range x {
		v += m.w[i+1] * xi
	}
	return v
}

// FitSingleTree fits one unbagged CART tree (no feature subsampling) as
// the simplest recursive-partitioning baseline.
func FitSingleTree(ta search.Dataset, spc *space.Space, minLeaf int) (*forest.Tree, error) {
	if ta = ta.Valid(); len(ta) == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	X, y := ta.Encode(spc)
	return forest.FitTree(X, y, forest.TreeParams{MinLeaf: minLeaf}, nil)
}

// SurrogateFamily names an ablation surrogate choice.
type SurrogateFamily string

// The ablation surrogate families.
const (
	FamilyForest SurrogateFamily = "forest"
	FamilyTree   SurrogateFamily = "tree"
	FamilyKNN    SurrogateFamily = "knn"
	FamilyLinear SurrogateFamily = "linear"
)

// FitFamily fits the named surrogate family on a dataset, returning a
// model usable by RSp/RSb.
func FitFamily(family SurrogateFamily, ta search.Dataset, spc *space.Space, seed uint64) (search.Model, error) {
	switch family {
	case FamilyForest:
		sur, err := FitSurrogate(ta, spc, "ablation", forest.Params{}, rng.New(seed))
		if err != nil {
			return nil, err
		}
		return sur, nil
	case FamilyTree:
		return FitSingleTree(ta, spc, 2)
	case FamilyKNN:
		return FitKNN(ta, spc, 5)
	case FamilyLinear:
		return FitLinear(ta, spc)
	default:
		return nil, fmt.Errorf("core: unknown surrogate family %q", family)
	}
}
