package core

import (
	"sync"
	"testing"

	"repro/internal/forest"
	"repro/internal/rng"
	"repro/internal/search"
)

// hammer calls m.Predict on every probe from many goroutines and checks
// the answers never deviate from a serial reference — the search.Model
// goroutine-safety contract, pinned under -race.
func hammer(t *testing.T, name string, m search.Model, probes [][]float64) {
	t.Helper()
	want := make([]float64, len(probes))
	for i, x := range probes {
		want[i] = m.Predict(x)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 15; iter++ {
				for i, x := range probes {
					if m.Predict(x) != want[i] {
						errs <- name + ": Predict diverged under concurrency"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestModelsConcurrentPredict hammers every in-tree model family from
// many goroutines at once: KNN (per-call scratch), linear (read-only
// weights), single tree, and the forest-backed Surrogate, including its
// sharded batch path.
func TestModelsConcurrentPredict(t *testing.T) {
	spc := ablSpace()
	ds := linearDataset(spc, 80, 3)
	probes := make([][]float64, 60)
	r := rng.New(77)
	for i := range probes {
		probes[i] = spc.Encode(spc.Random(r))
	}

	knn, err := FitKNN(ds, spc, 5)
	if err != nil {
		t.Fatal(err)
	}
	hammer(t, "knn", knn, probes)

	lin, err := FitLinear(ds, spc)
	if err != nil {
		t.Fatal(err)
	}
	hammer(t, "linear", lin, probes)

	tree, err := FitSingleTree(ds, spc, 2)
	if err != nil {
		t.Fatal(err)
	}
	hammer(t, "tree", tree, probes)

	sur, err := FitSurrogate(ds, spc, "test", forest.Params{Trees: 15}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	hammer(t, "surrogate", sur, probes)

	// The surrogate's batch path under concurrent callers.
	want := sur.PredictAll(probes)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := sur.PredictAll(probes)
			for i := range got {
				if got[i] != want[i] {
					t.Error("surrogate: PredictAll diverged under concurrency")
					return
				}
			}
		}()
	}
	wg.Wait()
}
