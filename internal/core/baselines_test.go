package core

import (
	"context"

	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/search"
	"repro/internal/space"
	"repro/internal/stats"
)

// linearDataset builds samples from a noiseless linear function so the
// linear model should recover it exactly.
func linearDataset(spc *space.Space, n int, seed uint64) search.Dataset {
	r := rng.New(seed)
	ds := make(search.Dataset, n)
	for i := 0; i < n; i++ {
		c := spc.Random(r)
		f := spc.Encode(c)
		y := 3 + 2*f[0] - 0.5*f[1]
		ds[i] = search.Sample{Config: c, RunTime: y}
	}
	return ds
}

func ablSpace() *space.Space {
	return space.New(
		space.NewIntRange("a", 0, 9),
		space.NewIntRange("b", 0, 9),
		space.NewPowerOfTwo("t", 0, 5),
	)
}

func TestLinearRecoversLinearFunction(t *testing.T) {
	spc := ablSpace()
	ds := linearDataset(spc, 60, 1)
	m, err := FitLinear(ds, spc)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 50; i++ {
		c := spc.Random(r)
		f := spc.Encode(c)
		want := 3 + 2*f[0] - 0.5*f[1]
		if math.Abs(m.Predict(f)-want) > 1e-6 {
			t.Fatalf("linear model off: %v vs %v", m.Predict(f), want)
		}
	}
}

func TestLinearErrors(t *testing.T) {
	if _, err := FitLinear(nil, ablSpace()); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestKNNExactOnTrainingPoints(t *testing.T) {
	spc := ablSpace()
	ds := linearDataset(spc, 40, 3)
	m, err := FitKNN(ds, spc, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ds {
		got := m.Predict(spc.Encode(s.Config))
		if math.Abs(got-s.RunTime) > 1e-9 {
			t.Fatalf("1-NN should reproduce training point: %v vs %v", got, s.RunTime)
		}
	}
}

func TestKNNAverageK(t *testing.T) {
	spc := space.New(space.NewIntRange("x", 0, 100))
	ds := search.Dataset{
		{Config: space.Config{0}, RunTime: 10},
		{Config: space.Config{1}, RunTime: 20},
		{Config: space.Config{100}, RunTime: 1000},
	}
	m, err := FitKNN(ds, spc, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Near x=0 the two nearest are 10 and 20.
	if got := m.Predict([]float64{0}); got != 15 {
		t.Fatalf("2-NN average = %v, want 15", got)
	}
}

func TestKNNClampsK(t *testing.T) {
	spc := ablSpace()
	ds := linearDataset(spc, 3, 4)
	m, err := FitKNN(ds, spc, 50)
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 3 {
		t.Fatalf("k not clamped: %d", m.K)
	}
}

func TestSingleTreeFits(t *testing.T) {
	spc := ablSpace()
	ds := linearDataset(spc, 80, 5)
	tree, err := FitSingleTree(ds, spc, 2)
	if err != nil {
		t.Fatal(err)
	}
	X, y := ds.Encode(spc)
	pred := make([]float64, len(y))
	for i := range X {
		pred[i] = tree.Predict(X[i])
	}
	rho, err := stats.Spearman(pred, y)
	if err != nil || rho < 0.9 {
		t.Fatalf("single tree rank correlation %.3f too weak (err %v)", rho, err)
	}
}

func TestFitFamilyAll(t *testing.T) {
	spc := ablSpace()
	ds := linearDataset(spc, 60, 6)
	for _, fam := range []SurrogateFamily{FamilyForest, FamilyTree, FamilyKNN, FamilyLinear} {
		m, err := FitFamily(fam, ds, spc, 9)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		p := m.Predict(spc.Encode(spc.Default()))
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("%s predicted %v", fam, p)
		}
	}
	if _, err := FitFamily("gp", ds, spc, 9); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestFamiliesRankOnKernelData(t *testing.T) {
	// On real kernel data the forest should rank at least as well as the
	// linear baseline (the nonlinearity argument for recursive
	// partitioning in the paper's Section III-A).
	lu := problemForFamilies(t)
	_, ta := Collect(context.Background(), lu, 80, rng.New(31))
	spc := lu.Space()
	X, _ := ta.Encode(spc)

	// Held-out sample.
	_, test := Collect(context.Background(), lu, 60, rng.New(32))
	truth := make([]float64, len(test))
	testX := make([][]float64, len(test))
	for i, s := range test {
		truth[i] = s.RunTime
		testX[i] = spc.Encode(s.Config)
	}
	_ = X

	score := func(fam SurrogateFamily) float64 {
		m, err := FitFamily(fam, ta, spc, 33)
		if err != nil {
			t.Fatal(err)
		}
		pred := make([]float64, len(testX))
		for i := range testX {
			pred[i] = m.Predict(testX[i])
		}
		rho, _ := stats.Spearman(pred, truth)
		return rho
	}
	rf := score(FamilyForest)
	lin := score(FamilyLinear)
	if rf < 0.5 {
		t.Fatalf("forest rank correlation only %.3f on kernel data", rf)
	}
	if rf < lin-0.1 {
		t.Fatalf("forest (%.3f) clearly worse than linear (%.3f)", rf, lin)
	}
}

func problemForFamilies(t *testing.T) search.Problem {
	t.Helper()
	return problem(t, "LU", mustMachine(t, "Sandybridge"))
}
