// Package kernels defines the four SPAPT search problems used in the
// paper's kernel experiments (Table III): Matrix Multiply (MM), ATAx
// (ATAX), Correlation (COR), and LU Decomposition (LU). Each kernel is a
// set of loop nests in the internal IR plus a typed parameter space of
// per-loop unroll factors, cache tiles, and register tiles (Table I), with
// SPAPT's scalar-replacement / vectorization / OpenMP switches where the
// paper's parameter counts require them.
//
// A Problem binds a kernel to a simulated machine target and exposes the
// evaluation interface the search algorithms consume.
package kernels

import (
	"fmt"
	"strings"

	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/transform"
)

// loopBinding associates one loop of one nest with its parameter suffix:
// parameters U_<suffix>, T_<suffix>, RT_<suffix> control the loop.
type loopBinding struct {
	nest   int
	vr     string
	suffix string
}

// Kernel is one SPAPT search problem: loop nests plus the tunable space.
type Kernel struct {
	Name      string
	InputSize string
	Nests     []*ir.Nest

	spc      *space.Space
	bindings []loopBinding
	hasSCR   bool
	hasVEC   bool
	hasOMP   bool
}

// Space returns the kernel's configuration space.
func (k *Kernel) Space() *space.Space { return k.spc }

// SpecsFor maps a configuration to one transformation spec per nest.
func (k *Kernel) SpecsFor(c space.Config) []transform.Spec {
	specs := make([]transform.Spec, len(k.Nests))
	for ni, n := range k.Nests {
		spec := transform.Spec{
			Unrolls:    map[string]int{},
			CacheTiles: map[string]int{},
			RegTiles:   map[string]int{},
		}
		for _, l := range n.Loops {
			spec.Order = append(spec.Order, l.Var)
		}
		if k.hasSCR {
			spec.ScalarReplace = k.spc.MustValue(c, "SCR") == 1
		}
		if k.hasVEC {
			spec.VectorHint = k.spc.MustValue(c, "VEC") == 1
		}
		specs[ni] = spec
	}
	for _, b := range k.bindings {
		specs[b.nest].Unrolls[b.vr] = k.spc.MustValue(c, "U_"+b.suffix)
		specs[b.nest].CacheTiles[b.vr] = k.spc.MustValue(c, "T_"+b.suffix)
		specs[b.nest].RegTiles[b.vr] = k.spc.MustValue(c, "RT_"+b.suffix)
	}
	return specs
}

// OMPEnabled reports whether the configuration turns the OpenMP pragmas
// on. Kernels without an OMP knob (LU) always use the target's threads.
func (k *Kernel) OMPEnabled(c space.Config) bool {
	if !k.hasOMP {
		return true
	}
	return k.spc.MustValue(c, "OMP") == 1
}

// Binding associates one loop of one nest with its parameter suffix;
// parameters U_<suffix>, T_<suffix>, RT_<suffix> control the loop.
// It is the exported form of the internal binding used by Custom.
type Binding struct {
	Nest   int
	Var    string
	Suffix string
}

// Custom assembles a Kernel from externally-constructed parts (used by
// the annotation front end in internal/annotate). The space must contain
// parameters U_/T_/RT_<suffix> for every binding, and SCR/VEC/OMP when
// the corresponding switches are enabled.
func Custom(name, inputSize string, nests []*ir.Nest, spc *space.Space, bindings []Binding, hasSCR, hasVEC, hasOMP bool) (*Kernel, error) {
	k := &Kernel{
		Name: name, InputSize: inputSize, Nests: nests, spc: spc,
		hasSCR: hasSCR, hasVEC: hasVEC, hasOMP: hasOMP,
	}
	for _, b := range bindings {
		if b.Nest < 0 || b.Nest >= len(nests) {
			return nil, fmt.Errorf("kernels: binding references nest %d of %d", b.Nest, len(nests))
		}
		if nests[b.Nest].LoopIndex(b.Var) < 0 {
			return nil, fmt.Errorf("kernels: binding references unknown loop %q in nest %d", b.Var, b.Nest)
		}
		for _, prefix := range []string{"U_", "T_", "RT_"} {
			if spc.Index(prefix+b.Suffix) < 0 {
				return nil, fmt.Errorf("kernels: space missing parameter %s%s", prefix, b.Suffix)
			}
		}
		k.bindings = append(k.bindings, loopBinding{nest: b.Nest, vr: b.Var, suffix: b.Suffix})
	}
	for flag, enabled := range map[string]bool{"SCR": hasSCR, "VEC": hasVEC, "OMP": hasOMP} {
		if enabled && spc.Index(flag) < 0 {
			return nil, fmt.Errorf("kernels: space missing switch %s", flag)
		}
	}
	for _, n := range nests {
		if err := n.Validate(); err != nil {
			return nil, fmt.Errorf("kernels: %w", err)
		}
	}
	return k, nil
}

// dense is a helper for 8-byte array declarations.
func dense(name string, dims ...ir.Expr) ir.Array {
	return ir.Array{Name: name, Dims: dims, ElemSize: 8}
}

// MM returns the Matrix Multiply kernel, C = A*B, with the given order n
// (the paper uses 2000).
func MM(n int) *Kernel {
	N := ir.Sym("N", 1)
	nest := &ir.Nest{
		Name: "mm",
		Loops: []ir.Loop{
			{Var: "i", Lower: ir.Constant(0), Upper: N, Step: 1, Unroll: 1},
			{Var: "j", Lower: ir.Constant(0), Upper: N, Step: 1, Unroll: 1},
			{Var: "k", Lower: ir.Constant(0), Upper: N, Step: 1, Unroll: 1},
		},
		Body: []ir.Stmt{{
			Refs: []ir.Ref{
				{Array: "C", Index: []ir.Expr{ir.Sym("i", 1), ir.Sym("j", 1)}, Write: true},
				{Array: "A", Index: []ir.Expr{ir.Sym("i", 1), ir.Sym("k", 1)}},
				{Array: "B", Index: []ir.Expr{ir.Sym("k", 1), ir.Sym("j", 1)}},
			},
			Flops: 2,
		}},
		Arrays: map[string]ir.Array{
			"A": dense("A", N, N), "B": dense("B", N, N), "C": dense("C", N, N),
		},
		Sizes: map[string]float64{"N": float64(n)},
	}
	k := &Kernel{
		Name:      "MM",
		InputSize: fmt.Sprintf("%dx%d", n, n),
		Nests:     []*ir.Nest{nest},
		bindings: []loopBinding{
			{0, "i", "I"}, {0, "j", "J"}, {0, "k", "K"},
		},
		hasSCR: true, hasVEC: true, hasOMP: true,
	}
	k.spc = space.New(
		space.NewIntRange("U_I", 1, 32),
		space.NewIntRange("U_J", 1, 32),
		space.NewIntRange("U_K", 1, 32),
		space.NewPowerOfTwo("T_I", 0, 11),
		space.NewPowerOfTwo("T_J", 0, 11),
		space.NewPowerOfTwo("T_K", 0, 11),
		space.NewPowerOfTwo("RT_I", 0, 5),
		space.NewPowerOfTwo("RT_J", 0, 5),
		space.NewPowerOfTwo("RT_K", 0, 5),
		space.NewBoolean("SCR"),
		space.NewBoolean("VEC"),
		space.NewBoolean("OMP"),
	)
	return k
}

// ATAX returns the A^T*(A*x) kernel with vector length n (paper: 10000).
// It has two loop nests: t = A*x, then y = A^T*t.
func ATAX(n int) *Kernel {
	N := ir.Sym("N", 1)
	nest1 := &ir.Nest{
		Name: "atax_t",
		Loops: []ir.Loop{
			{Var: "i", Lower: ir.Constant(0), Upper: N, Step: 1, Unroll: 1},
			{Var: "j", Lower: ir.Constant(0), Upper: N, Step: 1, Unroll: 1},
		},
		Body: []ir.Stmt{{
			Refs: []ir.Ref{
				{Array: "t", Index: []ir.Expr{ir.Sym("i", 1)}, Write: true},
				{Array: "A", Index: []ir.Expr{ir.Sym("i", 1), ir.Sym("j", 1)}},
				{Array: "x", Index: []ir.Expr{ir.Sym("j", 1)}},
			},
			Flops: 2,
		}},
		Arrays: map[string]ir.Array{
			"A": dense("A", N, N), "x": dense("x", N), "t": dense("t", N),
		},
		Sizes: map[string]float64{"N": float64(n)},
	}
	nest2 := &ir.Nest{
		Name: "atax_y",
		Loops: []ir.Loop{
			{Var: "i", Lower: ir.Constant(0), Upper: N, Step: 1, Unroll: 1},
			{Var: "j", Lower: ir.Constant(0), Upper: N, Step: 1, Unroll: 1},
		},
		Body: []ir.Stmt{{
			Refs: []ir.Ref{
				{Array: "y", Index: []ir.Expr{ir.Sym("j", 1)}, Write: true},
				{Array: "A", Index: []ir.Expr{ir.Sym("i", 1), ir.Sym("j", 1)}},
				{Array: "t", Index: []ir.Expr{ir.Sym("i", 1)}},
			},
			Flops: 2,
		}},
		Arrays: map[string]ir.Array{
			"A": dense("A", N, N), "y": dense("y", N), "t": dense("t", N),
		},
		Sizes: map[string]float64{"N": float64(n)},
	}
	k := &Kernel{
		Name:      "ATAX",
		InputSize: fmt.Sprintf("%d", n),
		Nests:     []*ir.Nest{nest1, nest2},
		bindings: []loopBinding{
			{0, "i", "I1"}, {0, "j", "J1"},
			{1, "i", "I2"}, {1, "j", "J2"},
		},
		hasOMP: true,
	}
	k.spc = space.New(
		space.NewIntRange("U_I1", 1, 32),
		space.NewIntRange("U_J1", 1, 32),
		space.NewIntRange("U_I2", 1, 32),
		space.NewIntRange("U_J2", 1, 16),
		space.NewPowerOfTwo("T_I1", 0, 7),
		space.NewPowerOfTwo("T_J1", 0, 7),
		space.NewPowerOfTwo("T_I2", 0, 7),
		space.NewPowerOfTwo("T_J2", 0, 7),
		space.NewPowerOfTwo("RT_I1", 0, 4),
		space.NewPowerOfTwo("RT_J1", 0, 4),
		space.NewPowerOfTwo("RT_I2", 0, 4),
		space.NewPowerOfTwo("RT_J2", 0, 4),
		space.NewBoolean("OMP"),
	)
	return k
}

// COR returns the correlation kernel: the upper triangle of the
// column-correlation matrix of an n-by-n data set (paper: 2000x2000).
func COR(n int) *Kernel {
	N := ir.Sym("N", 1)
	nest := &ir.Nest{
		Name: "cor",
		Loops: []ir.Loop{
			{Var: "j1", Lower: ir.Constant(0), Upper: N, Step: 1, Unroll: 1},
			{Var: "j2", Lower: ir.Sym("j1", 1).AddConst(1), Upper: N, Step: 1, Unroll: 1},
			{Var: "i", Lower: ir.Constant(0), Upper: N, Step: 1, Unroll: 1},
		},
		Body: []ir.Stmt{{
			Refs: []ir.Ref{
				{Array: "S", Index: []ir.Expr{ir.Sym("j1", 1), ir.Sym("j2", 1)}, Write: true},
				{Array: "D", Index: []ir.Expr{ir.Sym("i", 1), ir.Sym("j1", 1)}},
				{Array: "D", Index: []ir.Expr{ir.Sym("i", 1), ir.Sym("j2", 1)}},
			},
			Flops: 2,
		}},
		Arrays: map[string]ir.Array{
			"S": dense("S", N, N), "D": dense("D", N, N),
		},
		Sizes: map[string]float64{"N": float64(n)},
	}
	k := &Kernel{
		Name:      "COR",
		InputSize: fmt.Sprintf("%dx%d", n, n),
		Nests:     []*ir.Nest{nest},
		bindings: []loopBinding{
			{0, "j1", "J1"}, {0, "j2", "J2"}, {0, "i", "I"},
		},
		hasSCR: true, hasVEC: true, hasOMP: true,
	}
	k.spc = space.New(
		space.NewIntRange("U_J1", 1, 32),
		space.NewIntRange("U_J2", 1, 32),
		space.NewIntRange("U_I", 1, 32),
		space.NewPowerOfTwo("T_J1", 0, 11),
		space.NewPowerOfTwo("T_J2", 0, 11),
		space.NewPowerOfTwo("T_I", 0, 11),
		space.NewPowerOfTwo("RT_J1", 0, 5),
		space.NewPowerOfTwo("RT_J2", 0, 5),
		space.NewPowerOfTwo("RT_I", 0, 5),
		space.NewBoolean("SCR"),
		space.NewBoolean("VEC"),
		space.NewBoolean("OMP"),
	)
	return k
}

// LU returns the LU decomposition kernel's triangular update nest
// (paper: 2000x2000). Its 9-parameter space has no boolean switches,
// matching Table III.
func LU(n int) *Kernel {
	N := ir.Sym("N", 1)
	nest := &ir.Nest{
		Name: "lu",
		Loops: []ir.Loop{
			{Var: "k", Lower: ir.Constant(0), Upper: N, Step: 1, Unroll: 1},
			{Var: "i", Lower: ir.Sym("k", 1).AddConst(1), Upper: N, Step: 1, Unroll: 1},
			{Var: "j", Lower: ir.Sym("k", 1).AddConst(1), Upper: N, Step: 1, Unroll: 1},
		},
		Body: []ir.Stmt{{
			Refs: []ir.Ref{
				{Array: "A", Index: []ir.Expr{ir.Sym("i", 1), ir.Sym("j", 1)}, Write: true},
				{Array: "A", Index: []ir.Expr{ir.Sym("i", 1), ir.Sym("k", 1)}},
				{Array: "A", Index: []ir.Expr{ir.Sym("k", 1), ir.Sym("j", 1)}},
			},
			Flops: 2,
		}},
		Arrays: map[string]ir.Array{"A": dense("A", N, N)},
		Sizes:  map[string]float64{"N": float64(n)},
	}
	k := &Kernel{
		Name:      "LU",
		InputSize: fmt.Sprintf("%dx%d", n, n),
		Nests:     []*ir.Nest{nest},
		bindings: []loopBinding{
			{0, "k", "K"}, {0, "i", "I"}, {0, "j", "J"},
		},
	}
	k.spc = space.New(
		space.NewIntRange("U_K", 1, 16),
		space.NewIntRange("U_I", 1, 16),
		space.NewIntRange("U_J", 1, 16),
		space.NewPowerOfTwo("T_K", 0, 8),
		space.NewPowerOfTwo("T_I", 0, 8),
		space.NewPowerOfTwo("T_J", 0, 8),
		space.NewPowerOfTwo("RT_K", 0, 5),
		space.NewPowerOfTwo("RT_I", 0, 5),
		space.NewPowerOfTwo("RT_J", 0, 5),
	)
	return k
}

// Default paper input sizes (Table III).
const (
	DefaultMMSize   = 2000
	DefaultATAXSize = 10000
	DefaultCORSize  = 2000
	DefaultLUSize   = 2000
)

// ByName returns the named kernel at its paper input size.
func ByName(name string) (*Kernel, error) {
	switch strings.ToUpper(name) {
	case "MM":
		return MM(DefaultMMSize), nil
	case "ATAX":
		return ATAX(DefaultATAXSize), nil
	case "COR":
		return COR(DefaultCORSize), nil
	case "LU":
		return LU(DefaultLUSize), nil
	default:
		return nil, fmt.Errorf("kernels: unknown kernel %q (known: MM, ATAX, COR, LU)", name)
	}
}

// All returns the four kernels at their paper input sizes, in Table III
// order.
func All() []*Kernel {
	return []*Kernel{
		MM(DefaultMMSize),
		ATAX(DefaultATAXSize),
		COR(DefaultCORSize),
		LU(DefaultLUSize),
	}
}

// Problem binds a kernel to a simulated target machine and exposes the
// evaluation interface consumed by the search algorithms: Evaluate
// returns the measured run time of a configuration and the total cost
// charged to the search clock (compile + run).
type Problem struct {
	Kernel *Kernel
	Target sim.Target
	// ForceOMP runs every configuration with the target's thread count,
	// ignoring the kernel's OMP switch. The paper's Xeon Phi experiments
	// added OpenMP pragmas to the kernels outside the search (a beta
	// hyperparameter held fixed), which this reproduces.
	ForceOMP bool
}

// NewProblem constructs a Problem.
func NewProblem(k *Kernel, tgt sim.Target) *Problem {
	return &Problem{Kernel: k, Target: tgt}
}

// Name identifies the problem, e.g. "MM@Sandybridge/gnu-4.4.7/t1".
func (p *Problem) Name() string {
	return p.Kernel.Name + "@" + p.Target.Key()
}

// Space returns the kernel's configuration space.
func (p *Problem) Space() *space.Space { return p.Kernel.Space() }

// Evaluate compiles and runs the configuration on the simulated target.
func (p *Problem) Evaluate(c space.Config) (runTime, cost float64) {
	if err := p.Kernel.Space().Validate(c); err != nil {
		panic(fmt.Sprintf("kernels: %v", err))
	}
	specs := p.Kernel.SpecsFor(c)
	tgt := p.Target
	if !p.ForceOMP && !p.Kernel.OMPEnabled(c) {
		tgt.Threads = 1
	}
	run := 0.0
	compile := tgt.Machine.CompileBaseS
	for ni, spec := range specs {
		cost, err := sim.Evaluate(p.Kernel.Nests[ni], spec, tgt)
		if err != nil {
			panic(fmt.Sprintf("kernels: evaluating %s nest %d: %v", p.Kernel.Name, ni, err))
		}
		run += cost.RunSeconds
		// The nests compile into one binary: count the base once and the
		// per-nest code-growth components once each.
		compile += cost.CompileSeconds - tgt.Machine.CompileBaseS
	}
	return run, run + compile
}
