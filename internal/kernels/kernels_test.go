package kernels

import (
	"math"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stats"
)

// TestTableIII verifies the kernel collection against the paper's
// Table III: parameter counts exactly, search-space sizes to the same
// order of magnitude (our spaces are reconstructed from Table I's
// transformation ranges; EXPERIMENTS.md records the exact values).
func TestTableIII(t *testing.T) {
	cases := []struct {
		name      string
		ni        int
		size      float64
		inputSize string
	}{
		{"MM", 12, 8.58e10, "2000x2000"},
		{"ATAX", 13, 2.57e12, "10000"},
		{"COR", 12, 8.57e10, "2000x2000"},
		{"LU", 9, 5.83e8, "2000x2000"},
	}
	for _, c := range cases {
		k, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if got := k.Space().NumParams(); got != c.ni {
			t.Errorf("%s: %d parameters, Table III says %d", c.name, got, c.ni)
		}
		ratio := k.Space().Size() / c.size
		if ratio < 0.8 || ratio > 1.25 {
			t.Errorf("%s: space size %.3g vs Table III %.3g (ratio %.2f)",
				c.name, k.Space().Size(), c.size, ratio)
		}
		if k.InputSize != c.inputSize {
			t.Errorf("%s: input size %s, want %s", c.name, k.InputSize, c.inputSize)
		}
	}
}

// TestTableIRanges verifies the transformation ranges of Table I on the
// kernels that use the full ranges (MM, COR).
func TestTableIRanges(t *testing.T) {
	for _, name := range []string{"MM", "COR"} {
		k, _ := ByName(name)
		s := k.Space()
		for i := 0; i < s.NumParams(); i++ {
			p := s.Param(i)
			switch {
			case p.Name[0] == 'U':
				if p.Value(0) != 1 || p.Value(p.Levels()-1) != 32 {
					t.Errorf("%s/%s: unroll range not 1..32", name, p.Name)
				}
			case p.Name[0] == 'T':
				if p.Value(0) != 1 || p.Value(p.Levels()-1) != 2048 {
					t.Errorf("%s/%s: cache tile range not 2^0..2^11", name, p.Name)
				}
			case p.Name[0] == 'R':
				if p.Value(0) != 1 || p.Value(p.Levels()-1) != 32 {
					t.Errorf("%s/%s: register tile range not 2^0..2^5", name, p.Name)
				}
			}
		}
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("FFT"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if k, err := ByName("lu"); err != nil || k.Name != "LU" {
		t.Fatal("case-insensitive lookup failed")
	}
}

func TestAllKernelsValid(t *testing.T) {
	ks := All()
	if len(ks) != 4 {
		t.Fatalf("All() returned %d kernels", len(ks))
	}
	for _, k := range ks {
		for _, n := range k.Nests {
			if err := n.Validate(); err != nil {
				t.Errorf("%s nest %s invalid: %v", k.Name, n.Name, err)
			}
		}
	}
}

func TestSpecsForDefaultIsIdentity(t *testing.T) {
	for _, k := range All() {
		specs := k.SpecsFor(k.Space().Default())
		for _, s := range specs {
			for v, u := range s.Unrolls {
				if u != 1 {
					t.Errorf("%s: default unroll %s=%d", k.Name, v, u)
				}
			}
			for v, tl := range s.CacheTiles {
				if tl != 1 {
					t.Errorf("%s: default tile %s=%d", k.Name, v, tl)
				}
			}
			if s.ScalarReplace || s.VectorHint {
				t.Errorf("%s: default turns on SCR/VEC", k.Name)
			}
		}
	}
}

func TestSpecsForBindsParameters(t *testing.T) {
	k := MM(2000)
	s := k.Space()
	c := s.Default()
	c[s.Index("U_K")] = 7  // value 8
	c[s.Index("T_J")] = 5  // 2^5 = 32
	c[s.Index("RT_I")] = 2 // 2^2 = 4
	c[s.Index("SCR")] = 1
	spec := k.SpecsFor(c)[0]
	if spec.Unrolls["k"] != 8 {
		t.Fatalf("U_K not bound: %v", spec.Unrolls)
	}
	if spec.CacheTiles["j"] != 32 {
		t.Fatalf("T_J not bound: %v", spec.CacheTiles)
	}
	if spec.RegTiles["i"] != 4 {
		t.Fatalf("RT_I not bound: %v", spec.RegTiles)
	}
	if !spec.ScalarReplace {
		t.Fatal("SCR not bound")
	}
}

func TestATAXBindsBothNests(t *testing.T) {
	k := ATAX(10000)
	s := k.Space()
	c := s.Default()
	c[s.Index("U_J1")] = 3 // 4
	c[s.Index("U_J2")] = 7 // 8
	specs := k.SpecsFor(c)
	if len(specs) != 2 {
		t.Fatalf("ATAX has %d specs", len(specs))
	}
	if specs[0].Unrolls["j"] != 4 || specs[1].Unrolls["j"] != 8 {
		t.Fatalf("per-nest binding wrong: %v / %v", specs[0].Unrolls, specs[1].Unrolls)
	}
}

func TestOMPGating(t *testing.T) {
	k := MM(2000)
	s := k.Space()
	c := s.Default()
	if k.OMPEnabled(c) {
		t.Fatal("OMP default should be off for MM")
	}
	c[s.Index("OMP")] = 1
	if !k.OMPEnabled(c) {
		t.Fatal("OMP=1 not detected")
	}
	// LU has no OMP knob: always enabled (threads come from the target).
	lu := LU(2000)
	if !lu.OMPEnabled(lu.Space().Default()) {
		t.Fatal("LU should always use target threads")
	}
}

func gnuProblem(t *testing.T, name string, m machine.Machine) *Problem {
	t.Helper()
	k, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return NewProblem(k, sim.Target{Machine: m, Compiler: machine.GNU, Threads: 1})
}

func TestProblemEvaluateDeterministic(t *testing.T) {
	p := gnuProblem(t, "LU", machine.Sandybridge)
	c := p.Space().Random(rng.New(1))
	r1, c1 := p.Evaluate(c)
	r2, c2 := p.Evaluate(c)
	if r1 != r2 || c1 != c2 {
		t.Fatal("evaluation not deterministic")
	}
	if r1 <= 0 || c1 <= r1 {
		t.Fatalf("degenerate evaluation: run=%v cost=%v", r1, c1)
	}
}

func TestProblemName(t *testing.T) {
	p := gnuProblem(t, "MM", machine.Westmere)
	if p.Name() != "MM@Westmere/gnu-4.4.7/t1" {
		t.Fatalf("Name = %q", p.Name())
	}
}

func TestEvaluationLandscapeHasSpread(t *testing.T) {
	// 60 random configurations must span a meaningful run-time range on
	// every kernel (the paper's Figure 1 shows a wide spread).
	r := rng.New(42)
	for _, name := range []string{"MM", "ATAX", "COR", "LU"} {
		p := gnuProblem(t, name, machine.Sandybridge)
		var runs []float64
		for i := 0; i < 60; i++ {
			run, _ := p.Evaluate(p.Space().Random(r))
			runs = append(runs, run)
		}
		spread := stats.Max(runs) / stats.Min(runs)
		if spread < 1.5 {
			t.Errorf("%s: landscape spread only %.2fx", name, spread)
		}
	}
}

// TestFigure1Correlation reproduces the paper's Figure 1 premise: 200
// random LU configurations must correlate strongly (Pearson and Spearman
// > 0.8) between Westmere and Sandybridge.
func TestFigure1Correlation(t *testing.T) {
	lu, _ := ByName("LU")
	west := NewProblem(lu, sim.Target{Machine: machine.Westmere, Compiler: machine.GNU, Threads: 1})
	sandy := NewProblem(lu, sim.Target{Machine: machine.Sandybridge, Compiler: machine.GNU, Threads: 1})
	r := rng.NewNamed(2016, "fig1-test")
	var w, s []float64
	for i := 0; i < 200; i++ {
		c := lu.Space().Random(r)
		rw, _ := west.Evaluate(c)
		rs, _ := sandy.Evaluate(c)
		w = append(w, rw)
		s = append(s, rs)
	}
	rp, err := stats.Pearson(w, s)
	if err != nil {
		t.Fatal(err)
	}
	rs_, err := stats.Spearman(w, s)
	if err != nil {
		t.Fatal(err)
	}
	if rp < 0.8 {
		t.Errorf("Westmere/Sandybridge LU Pearson = %.3f, paper reports > 0.8", rp)
	}
	if rs_ < 0.8 {
		t.Errorf("Westmere/Sandybridge LU Spearman = %.3f, paper reports > 0.8", rs_)
	}
}

// The X-Gene landscape must NOT track Intel closely — the paper found no
// transfer benefit to ARM.
func TestXGeneRankCorrelationWeaker(t *testing.T) {
	lu, _ := ByName("LU")
	sandy := NewProblem(lu, sim.Target{Machine: machine.Sandybridge, Compiler: machine.GNU, Threads: 1})
	xgene := NewProblem(lu, sim.Target{Machine: machine.XGene, Compiler: machine.GNU, Threads: 1})
	west := NewProblem(lu, sim.Target{Machine: machine.Westmere, Compiler: machine.GNU, Threads: 1})
	r := rng.NewNamed(2016, "xgene-test")
	var sb, xg, wm []float64
	for i := 0; i < 150; i++ {
		c := lu.Space().Random(r)
		a, _ := sandy.Evaluate(c)
		b, _ := xgene.Evaluate(c)
		d, _ := west.Evaluate(c)
		sb = append(sb, a)
		xg = append(xg, b)
		wm = append(wm, d)
	}
	sXG, _ := stats.Spearman(sb, xg)
	sWM, _ := stats.Spearman(sb, wm)
	if sXG >= sWM {
		t.Errorf("X-Gene rank correlation (%.3f) should be weaker than Westmere's (%.3f)", sXG, sWM)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	p := gnuProblem(t, "MM", machine.Sandybridge)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	p.Evaluate(space.Config{0})
}

func TestDefaultConfigMatchesUntransformed(t *testing.T) {
	// Problem cost must exceed run time by about the compile time.
	p := gnuProblem(t, "MM", machine.Sandybridge)
	run, cost := p.Evaluate(p.Space().Default())
	compile := cost - run
	if compile < machine.Sandybridge.CompileBaseS {
		t.Fatalf("compile component %.2f below base", compile)
	}
}

func TestThreadsFlowThroughOMP(t *testing.T) {
	k := MM(2000)
	tgt := sim.Target{Machine: machine.XeonPhi, Compiler: machine.Intel, Threads: 60}
	p := NewProblem(k, tgt)
	s := k.Space()
	coff := s.Default()
	con := s.Default()
	con[s.Index("OMP")] = 1
	roff, _ := p.Evaluate(coff)
	ron, _ := p.Evaluate(con)
	if ron >= roff {
		t.Fatalf("OMP=1 with 60 threads (%.4f) not faster than serial (%.4f)", ron, roff)
	}
	if roff/ron > 60 {
		t.Fatal("superlinear OMP scaling")
	}
	if math.IsNaN(ron) || math.IsInf(ron, 0) {
		t.Fatal("invalid run time")
	}
}

// TestEvaluationRobustnessProperty sweeps every kernel across every
// machine/compiler combination with random configurations: evaluations
// must always be finite, positive, and cost-consistent.
func TestEvaluationRobustnessProperty(t *testing.T) {
	r := rng.New(77)
	for _, k := range All() {
		for _, m := range machine.All() {
			for _, comp := range machine.Compilers() {
				if !m.SupportsCompiler(comp) {
					continue
				}
				for _, threads := range []int{1, m.Cores} {
					p := NewProblem(k, sim.Target{Machine: m, Compiler: comp, Threads: threads})
					for i := 0; i < 6; i++ {
						c := k.Space().Random(r)
						run, cost := p.Evaluate(c)
						if math.IsNaN(run) || math.IsInf(run, 0) || run <= 0 {
							t.Fatalf("%s on %s/%s t%d: run=%v for %s",
								k.Name, m.Name, comp.Name, threads, run, k.Space().String(c))
						}
						if cost <= run {
							t.Fatalf("%s on %s/%s: cost %v <= run %v",
								k.Name, m.Name, comp.Name, cost, run)
						}
					}
				}
			}
		}
	}
}

// TestExtremeConfigurationsEvaluate drives the corner cases: every knob
// at its maximum and at its minimum.
func TestExtremeConfigurationsEvaluate(t *testing.T) {
	for _, k := range All() {
		s := k.Space()
		low := s.Default()
		high := make(space.Config, s.NumParams())
		for i := range high {
			high[i] = s.Param(i).Levels() - 1
		}
		for _, m := range machine.All() {
			p := NewProblem(k, sim.Target{Machine: m, Compiler: machine.GNU, Threads: 1})
			for _, c := range []space.Config{low, high} {
				run, cost := p.Evaluate(c)
				if math.IsNaN(run) || run <= 0 || cost <= 0 {
					t.Fatalf("%s extreme config on %s: run=%v cost=%v", k.Name, m.Name, run, cost)
				}
			}
		}
	}
}

func TestCustomConstructorValidation(t *testing.T) {
	nest := MM(64).Nests[0]
	goodSpace := space.New(
		space.NewIntRange("U_X", 1, 4),
		space.NewPowerOfTwo("T_X", 0, 2),
		space.NewPowerOfTwo("RT_X", 0, 2),
		space.NewBoolean("SCR"),
	)
	k, err := Custom("custom", "64x64", []*ir.Nest{nest}, goodSpace,
		[]Binding{{Nest: 0, Var: "i", Suffix: "X"}}, true, false, false)
	if err != nil {
		t.Fatal(err)
	}
	c := k.Space().Default()
	c[k.Space().Index("U_X")] = 3
	if k.SpecsFor(c)[0].Unrolls["i"] != 4 {
		t.Fatal("custom binding not applied")
	}

	if _, err := Custom("x", "s", []*ir.Nest{nest}, goodSpace,
		[]Binding{{Nest: 5, Var: "i", Suffix: "X"}}, false, false, false); err == nil {
		t.Fatal("out-of-range nest accepted")
	}
	if _, err := Custom("x", "s", []*ir.Nest{nest}, goodSpace,
		[]Binding{{Nest: 0, Var: "zz", Suffix: "X"}}, false, false, false); err == nil {
		t.Fatal("unknown loop accepted")
	}
	if _, err := Custom("x", "s", []*ir.Nest{nest}, goodSpace,
		[]Binding{{Nest: 0, Var: "i", Suffix: "MISSING"}}, false, false, false); err == nil {
		t.Fatal("missing parameters accepted")
	}
	if _, err := Custom("x", "s", []*ir.Nest{nest}, goodSpace,
		[]Binding{{Nest: 0, Var: "i", Suffix: "X"}}, false, true, false); err == nil {
		t.Fatal("missing VEC switch accepted")
	}
	bad := nest.Clone()
	bad.Loops[0].Step = 0
	if _, err := Custom("x", "s", []*ir.Nest{bad}, goodSpace,
		[]Binding{{Nest: 0, Var: "i", Suffix: "X"}}, false, false, false); err == nil {
		t.Fatal("invalid nest accepted")
	}
}
