// Command tracestat summarizes JSONL search traces written by
// autotune -trace, brokerd -trace, or any obs.JSONLSink.
//
// Usage:
//
//	tracestat FILE...
//	tracestat -          # read a trace from stdin
//
// It prints, per merged trace: the run header (algorithm, problem,
// evaluation statuses, best run), a wall-time breakdown of the
// instrumented phases (model scoring, model fits, journal appends,
// checkpoints), and the convergence table — the best-so-far curve
// reconstructed purely from the trace's evaluation events.
//
// Given several files — typically the coordinator's trace plus one
// trace per remote worker — tracestat stitches their span events into
// one causal per-task timeline keyed by trace id: queue wait, attempt
// tree (retries and hedges), which worker evaluated each task and for
// how long, and a per-worker utilization table. Malformed lines (a
// torn tail from a killed process, a partial write) are skipped with a
// warning rather than failing the whole file.
//
// Exit codes: 0 success, 1 unreadable or malformed trace, 2 bad usage.
package main

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

const (
	exitOK    = 0
	exitError = 1
	exitUsage = 2
)

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }

func run(args []string, w io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracestat FILE...   (use - for stdin)")
		return exitUsage
	}
	for _, a := range args {
		if strings.HasPrefix(a, "-") && a != "-" {
			fmt.Fprintln(os.Stderr, "usage: tracestat FILE...   (use - for stdin)")
			return exitUsage
		}
	}
	var events []obs.Event
	for _, a := range args {
		evs, err := readOne(a)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracestat:", err)
			return exitError
		}
		events = append(events, evs...)
	}
	if len(events) == 0 {
		fmt.Fprintln(os.Stderr, "tracestat: trace holds no events")
		return exitError
	}
	render(w, analyze(events))
	if d := stitch(events); d != nil {
		renderDistributed(w, d)
	}
	return exitOK
}

// readOne reads one trace file (or stdin, for "-") leniently: malformed
// lines — a torn tail from a killed worker, a partial write — are
// skipped with a warning instead of condemning the readable remainder.
func readOne(arg string) ([]obs.Event, error) {
	var r io.Reader = os.Stdin
	name := "stdin"
	if arg != "-" {
		f, err := os.Open(arg)
		if err != nil {
			return nil, err
		}
		// Read-only handle: a close failure cannot lose data.
		defer func() { _ = f.Close() }()
		r = f
		name = arg
	}
	events, skipped, err := obs.ReadTraceLenient(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "tracestat: %s: skipped %d malformed line(s)\n", name, skipped)
	}
	return events, nil
}

// phaseTime accumulates the wall time of one instrumented phase.
type phaseTime struct {
	name   string
	events int
	calls  int
	dur    time.Duration
}

// curvePoint is one improvement step of the best-so-far curve.
type curvePoint struct {
	seq    int
	clock  float64
	best   float64
	config string
}

// traceStats is everything tracestat reports about one trace.
type traceStats struct {
	events    int
	algorithm string
	problem   string

	evals    int
	byStatus map[string]int
	retried  int
	retries  int
	skipped  int
	cacheHit int

	bestRun   float64
	bestSeq   int
	bestClock float64
	clock     float64

	phases []phaseTime
	curve  []curvePoint

	journalAppends int
	checkpoints    int
	faults         int
	degraded       []string
}

// analyze folds a trace into its statistics. Only evaluation events
// contribute to the convergence curve, so the curve is reconstructable
// from a trace alone — no Result needed.
func analyze(events []obs.Event) *traceStats {
	st := &traceStats{
		events:   len(events),
		byStatus: map[string]int{},
		bestRun:  math.Inf(1),
	}
	phases := map[string]*phaseTime{}
	phase := func(name string) *phaseTime {
		p, ok := phases[name]
		if !ok {
			p = &phaseTime{name: name}
			phases[name] = p
		}
		return p
	}
	for _, e := range events {
		switch e.Kind {
		case obs.KindSearchStart:
			st.algorithm, st.problem = e.Algo, e.Problem
		case obs.KindSearchFinish:
			st.clock = e.Elapsed
		case obs.KindEval:
			st.evals++
			st.byStatus[e.Status]++
			if e.N > 0 {
				st.retried++
				st.retries += e.N
			}
			if e.Elapsed > st.clock {
				st.clock = e.Elapsed
			}
			if e.Status == "ok" && e.Value < st.bestRun {
				st.bestRun = e.Value
				st.bestSeq = e.Seq
				st.bestClock = e.Elapsed
				st.curve = append(st.curve, curvePoint{
					seq: e.Seq, clock: e.Elapsed, best: e.Value, config: e.Config,
				})
			}
		case obs.KindSkip:
			st.skipped++
		case obs.KindCacheHit:
			st.cacheHit++
		case obs.KindFault:
			st.faults++
		case obs.KindDegraded:
			st.degraded = append(st.degraded, e.Detail)
		case obs.KindModelPredict:
			p := phase("model-predict/" + e.Detail)
			p.events++
			p.calls += e.N
			p.dur += e.Dur
		case obs.KindModelFit:
			p := phase("model-fit/" + e.Detail)
			p.events++
			p.calls += e.N
			p.dur += e.Dur
		case obs.KindJournalAppend:
			st.journalAppends++
			p := phase("journal-append")
			p.events++
			p.calls++
			p.dur += e.Dur
		case obs.KindCheckpoint:
			st.checkpoints++
			p := phase("checkpoint")
			p.events++
			p.calls++
			p.dur += e.Dur
		}
	}
	for _, p := range phases {
		st.phases = append(st.phases, *p)
	}
	sort.Slice(st.phases, func(a, b int) bool {
		if st.phases[a].dur != st.phases[b].dur {
			return st.phases[a].dur > st.phases[b].dur
		}
		return st.phases[a].name < st.phases[b].name
	})
	return st
}

// bestSoFar reconstructs the full best-so-far trajectory (one entry per
// evaluation, +Inf before the first clean measurement) from the trace's
// evaluation events — the same sequence Result.BestSoFar returns.
func bestSoFar(events []obs.Event) []float64 {
	var out []float64
	best := math.Inf(1)
	for _, e := range events {
		if e.Kind != obs.KindEval {
			continue
		}
		if e.Status == "ok" && !math.IsInf(e.Value, 0) && !math.IsNaN(e.Value) && e.Value < best {
			best = e.Value
		}
		out = append(out, best)
	}
	return out
}

func render(w io.Writer, st *traceStats) {
	fmt.Fprintf(w, "trace: %d events\n\n", st.events)

	fmt.Fprintln(w, "run")
	fmt.Fprintf(w, "  algorithm:    %s\n", orDash(st.algorithm))
	fmt.Fprintf(w, "  problem:      %s\n", orDash(st.problem))
	fmt.Fprintf(w, "  evaluations:  %d (%s)\n", st.evals, statusLine(st))
	fmt.Fprintf(w, "  skipped:      %d\n", st.skipped)
	if st.cacheHit > 0 {
		fmt.Fprintf(w, "  cache hits:   %d\n", st.cacheHit)
	}
	if st.faults > 0 {
		fmt.Fprintf(w, "  faults:       %d\n", st.faults)
	}
	for _, d := range st.degraded {
		fmt.Fprintf(w, "  degraded:     %s\n", d)
	}
	if !math.IsInf(st.bestRun, 0) {
		fmt.Fprintf(w, "  best run:     %.4f s (evaluation %d, clock %.1f s)\n",
			st.bestRun, st.bestSeq+1, st.bestClock)
	}
	fmt.Fprintf(w, "  search clock: %.1f s\n", st.clock)

	if len(st.phases) > 0 {
		var total time.Duration
		for _, p := range st.phases {
			total += p.dur
		}
		fmt.Fprintln(w)
		fmt.Fprintln(w, "wall-time breakdown")
		fmt.Fprintf(w, "  %-28s %8s %8s %12s %7s\n", "phase", "events", "calls", "wall", "share")
		for _, p := range st.phases {
			share := 0.0
			if total > 0 {
				share = 100 * float64(p.dur) / float64(total)
			}
			fmt.Fprintf(w, "  %-28s %8d %8d %12s %6.1f%%\n",
				p.name, p.events, p.calls, p.dur.Round(time.Microsecond), share)
		}
		fmt.Fprintf(w, "  %-28s %8s %8s %12s\n", "total", "", "", total.Round(time.Microsecond))
	}

	if len(st.curve) > 0 {
		fmt.Fprintln(w)
		fmt.Fprintln(w, "convergence (best-so-far)")
		fmt.Fprintf(w, "  %6s %12s %12s   %s\n", "eval", "clock(s)", "best(s)", "config")
		for _, c := range st.curve {
			fmt.Fprintf(w, "  %6d %12.1f %12.4f   %s\n", c.seq+1, c.clock, c.best, c.config)
		}
	}
}

func statusLine(st *traceStats) string {
	parts := make([]string, 0, len(st.byStatus)+1)
	for _, s := range sortedStatusKeys(st.byStatus) {
		parts = append(parts, fmt.Sprintf("%d %s", st.byStatus[s], s))
	}
	if st.retried > 0 {
		parts = append(parts, fmt.Sprintf("%d retried (%d extra attempts)", st.retried, st.retries))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ", ")
}

func sortedStatusKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// attemptSpan is one dispatch attempt of a task, stitched from the span
// events that share its (seq, attempt) pair — the coordinator's
// dispatch/lease/result stages and the worker's worker-eval stage,
// possibly read from different files.
type attemptSpan struct {
	dispatchWall int64
	leaseWall    int64
	evalWall     int64
	resultWall   int64
	worker       string // dispatch target (shard or remote worker label)
	evalWorker   string // who actually ran it (worker-eval emitter)
	evalDur      time.Duration
	hedgeLoss    bool
}

// taskSpan is one task's stitched causal chain.
type taskSpan struct {
	seq         int
	enqueueWall int64
	attempts    map[int]*attemptSpan
}

// workerUtil accumulates one worker's share of the evaluation work.
type workerUtil struct {
	label string
	evals int
	busy  time.Duration
}

// distTrace is the stitched distributed view of a merged trace: every
// span event folded into per-task chains and per-worker utilization.
type distTrace struct {
	traceID string
	spans   int
	evals   int // worker-eval spans: evaluations that actually ran
	hedges  int // hedge-loss spans: dispatches that lost the claim race
	tasks   map[int]*taskSpan
	workers map[string]*workerUtil
}

// stitch folds span events into the distributed view, or nil when the
// merged trace carries no spans (a plain single-process trace).
func stitch(events []obs.Event) *distTrace {
	d := &distTrace{tasks: map[int]*taskSpan{}, workers: map[string]*workerUtil{}}
	for _, e := range events {
		if e.Kind != obs.KindSpan {
			continue
		}
		d.spans++
		if d.traceID == "" {
			d.traceID = e.Trace
		}
		t := d.tasks[e.Seq]
		if t == nil {
			t = &taskSpan{seq: e.Seq, attempts: map[int]*attemptSpan{}}
			d.tasks[e.Seq] = t
		}
		att := func() *attemptSpan {
			a := t.attempts[e.N]
			if a == nil {
				a = &attemptSpan{}
				t.attempts[e.N] = a
			}
			return a
		}
		switch e.Detail {
		case "task": // task anchor: structure only
		case "attempt":
			att()
		case "enqueue":
			if t.enqueueWall == 0 || (e.Wall != 0 && e.Wall < t.enqueueWall) {
				t.enqueueWall = e.Wall
			}
		case "dispatch":
			a := att()
			a.dispatchWall = e.Wall
			a.worker = e.Worker
		case "lease":
			att().leaseWall = e.Wall
		case "worker-eval":
			a := att()
			a.evalWall = e.Wall
			a.evalWorker = e.Worker
			a.evalDur = e.Dur
			d.evals++
			wu := d.workers[e.Worker]
			if wu == nil {
				wu = &workerUtil{label: e.Worker}
				d.workers[e.Worker] = wu
			}
			wu.evals++
			wu.busy += e.Dur
		case "result":
			att().resultWall = e.Wall
		case "hedge-loss":
			att().hedgeLoss = true
			d.hedges++
		}
	}
	if d.spans == 0 {
		return nil
	}
	return d
}

// wallDelta renders b-a as a duration, or "-" when either side of the
// pair is missing (its span was lost with a torn file or dead worker).
func wallDelta(a, b int64) string {
	if a == 0 || b == 0 || b < a {
		return "-"
	}
	return time.Duration(b - a).Round(time.Microsecond).String()
}

// attemptTree renders a task's attempts in dispatch order: the worker
// that ran (or lost) each attempt, "!" marking a hedge loss.
func attemptTree(t *taskSpan) string {
	ids := make([]int, 0, len(t.attempts))
	for id := range t.attempts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	parts := make([]string, 0, len(ids))
	for _, id := range ids {
		a := t.attempts[id]
		label := a.evalWorker
		if label == "" {
			label = a.worker
		}
		if label == "" {
			label = "?"
		}
		if a.hedgeLoss {
			label += "!"
		}
		parts = append(parts, label)
	}
	return strings.Join(parts, " ")
}

func renderDistributed(w io.Writer, d *distTrace) {
	fmt.Fprintln(w)
	fmt.Fprintln(w, "distributed trace")
	fmt.Fprintf(w, "  trace id:     %s\n", orDash(d.traceID))
	fmt.Fprintf(w, "  spans:        %d\n", d.spans)
	fmt.Fprintf(w, "  tasks:        %d\n", len(d.tasks))
	fmt.Fprintf(w, "  evaluations:  %d (reconstructed from worker-eval spans)\n", d.evals)
	if d.hedges > 0 {
		fmt.Fprintf(w, "  hedge losses: %d\n", d.hedges)
	}

	seqs := make([]int, 0, len(d.tasks))
	for seq := range d.tasks {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "per-task timeline")
	fmt.Fprintf(w, "  %6s %10s %10s %10s %10s %8s   %s\n",
		"task", "queue", "lease", "eval", "total", "attempts", "workers")
	for _, seq := range seqs {
		t := d.tasks[seq]
		// The winning attempt: the one that produced a result (or, for a
		// chain cut short, the highest-numbered one).
		ids := make([]int, 0, len(t.attempts))
		for id := range t.attempts {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		var win *attemptSpan
		for _, id := range ids {
			a := t.attempts[id]
			if win == nil || a.resultWall != 0 {
				win = a
			}
		}
		if win == nil {
			win = &attemptSpan{}
		}
		eval := "-"
		if win.evalDur > 0 {
			eval = win.evalDur.Round(time.Microsecond).String()
		}
		fmt.Fprintf(w, "  %6d %10s %10s %10s %10s %8d   %s\n",
			seq+1,
			wallDelta(t.enqueueWall, win.dispatchWall),
			wallDelta(win.dispatchWall, win.leaseWall),
			eval,
			wallDelta(t.enqueueWall, win.resultWall),
			len(t.attempts),
			attemptTree(t))
	}

	if len(d.workers) > 0 {
		labels := make([]string, 0, len(d.workers))
		var busy time.Duration
		for l, wu := range d.workers {
			labels = append(labels, l)
			busy += wu.busy
		}
		sort.Strings(labels)
		fmt.Fprintln(w)
		fmt.Fprintln(w, "worker utilization")
		fmt.Fprintf(w, "  %-16s %8s %12s %7s\n", "worker", "evals", "busy", "share")
		for _, l := range labels {
			wu := d.workers[l]
			share := 0.0
			if busy > 0 {
				share = 100 * float64(wu.busy) / float64(busy)
			}
			fmt.Fprintf(w, "  %-16s %8d %12s %6.1f%%\n",
				l, wu.evals, wu.busy.Round(time.Microsecond), share)
		}
	}
}
