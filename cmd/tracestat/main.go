// Command tracestat summarizes a JSONL search trace written by
// autotune -trace (or any obs.JSONLSink).
//
// Usage:
//
//	tracestat FILE
//	tracestat -          # read the trace from stdin
//
// It prints, per search in the trace: the run header (algorithm,
// problem, evaluation statuses, best run), a wall-time breakdown of the
// instrumented phases (model scoring, model fits, journal appends,
// checkpoints), and the convergence table — the best-so-far curve
// reconstructed purely from the trace's evaluation events.
//
// Exit codes: 0 success, 1 unreadable or malformed trace, 2 bad usage.
package main

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

const (
	exitOK    = 0
	exitError = 1
	exitUsage = 2
)

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }

func run(args []string, w io.Writer) int {
	if len(args) != 1 || strings.HasPrefix(args[0], "-") && args[0] != "-" {
		fmt.Fprintln(os.Stderr, "usage: tracestat FILE   (use - for stdin)")
		return exitUsage
	}
	var r io.Reader = os.Stdin
	if args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracestat:", err)
			return exitError
		}
		// Read-only handle: a close failure cannot lose data.
		defer func() { _ = f.Close() }()
		r = f
	}
	events, err := obs.ReadTrace(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		return exitError
	}
	if len(events) == 0 {
		fmt.Fprintln(os.Stderr, "tracestat: trace holds no events")
		return exitError
	}
	render(w, analyze(events))
	return exitOK
}

// phaseTime accumulates the wall time of one instrumented phase.
type phaseTime struct {
	name   string
	events int
	calls  int
	dur    time.Duration
}

// curvePoint is one improvement step of the best-so-far curve.
type curvePoint struct {
	seq    int
	clock  float64
	best   float64
	config string
}

// traceStats is everything tracestat reports about one trace.
type traceStats struct {
	events    int
	algorithm string
	problem   string

	evals    int
	byStatus map[string]int
	retried  int
	retries  int
	skipped  int
	cacheHit int

	bestRun   float64
	bestSeq   int
	bestClock float64
	clock     float64

	phases []phaseTime
	curve  []curvePoint

	journalAppends int
	checkpoints    int
	faults         int
	degraded       []string
}

// analyze folds a trace into its statistics. Only evaluation events
// contribute to the convergence curve, so the curve is reconstructable
// from a trace alone — no Result needed.
func analyze(events []obs.Event) *traceStats {
	st := &traceStats{
		events:   len(events),
		byStatus: map[string]int{},
		bestRun:  math.Inf(1),
	}
	phases := map[string]*phaseTime{}
	phase := func(name string) *phaseTime {
		p, ok := phases[name]
		if !ok {
			p = &phaseTime{name: name}
			phases[name] = p
		}
		return p
	}
	for _, e := range events {
		switch e.Kind {
		case obs.KindSearchStart:
			st.algorithm, st.problem = e.Algo, e.Problem
		case obs.KindSearchFinish:
			st.clock = e.Elapsed
		case obs.KindEval:
			st.evals++
			st.byStatus[e.Status]++
			if e.N > 0 {
				st.retried++
				st.retries += e.N
			}
			if e.Elapsed > st.clock {
				st.clock = e.Elapsed
			}
			if e.Status == "ok" && e.Value < st.bestRun {
				st.bestRun = e.Value
				st.bestSeq = e.Seq
				st.bestClock = e.Elapsed
				st.curve = append(st.curve, curvePoint{
					seq: e.Seq, clock: e.Elapsed, best: e.Value, config: e.Config,
				})
			}
		case obs.KindSkip:
			st.skipped++
		case obs.KindCacheHit:
			st.cacheHit++
		case obs.KindFault:
			st.faults++
		case obs.KindDegraded:
			st.degraded = append(st.degraded, e.Detail)
		case obs.KindModelPredict:
			p := phase("model-predict/" + e.Detail)
			p.events++
			p.calls += e.N
			p.dur += e.Dur
		case obs.KindModelFit:
			p := phase("model-fit/" + e.Detail)
			p.events++
			p.calls += e.N
			p.dur += e.Dur
		case obs.KindJournalAppend:
			st.journalAppends++
			p := phase("journal-append")
			p.events++
			p.calls++
			p.dur += e.Dur
		case obs.KindCheckpoint:
			st.checkpoints++
			p := phase("checkpoint")
			p.events++
			p.calls++
			p.dur += e.Dur
		}
	}
	for _, p := range phases {
		st.phases = append(st.phases, *p)
	}
	sort.Slice(st.phases, func(a, b int) bool {
		if st.phases[a].dur != st.phases[b].dur {
			return st.phases[a].dur > st.phases[b].dur
		}
		return st.phases[a].name < st.phases[b].name
	})
	return st
}

// bestSoFar reconstructs the full best-so-far trajectory (one entry per
// evaluation, +Inf before the first clean measurement) from the trace's
// evaluation events — the same sequence Result.BestSoFar returns.
func bestSoFar(events []obs.Event) []float64 {
	var out []float64
	best := math.Inf(1)
	for _, e := range events {
		if e.Kind != obs.KindEval {
			continue
		}
		if e.Status == "ok" && !math.IsInf(e.Value, 0) && !math.IsNaN(e.Value) && e.Value < best {
			best = e.Value
		}
		out = append(out, best)
	}
	return out
}

func render(w io.Writer, st *traceStats) {
	fmt.Fprintf(w, "trace: %d events\n\n", st.events)

	fmt.Fprintln(w, "run")
	fmt.Fprintf(w, "  algorithm:    %s\n", orDash(st.algorithm))
	fmt.Fprintf(w, "  problem:      %s\n", orDash(st.problem))
	fmt.Fprintf(w, "  evaluations:  %d (%s)\n", st.evals, statusLine(st))
	fmt.Fprintf(w, "  skipped:      %d\n", st.skipped)
	if st.cacheHit > 0 {
		fmt.Fprintf(w, "  cache hits:   %d\n", st.cacheHit)
	}
	if st.faults > 0 {
		fmt.Fprintf(w, "  faults:       %d\n", st.faults)
	}
	for _, d := range st.degraded {
		fmt.Fprintf(w, "  degraded:     %s\n", d)
	}
	if !math.IsInf(st.bestRun, 0) {
		fmt.Fprintf(w, "  best run:     %.4f s (evaluation %d, clock %.1f s)\n",
			st.bestRun, st.bestSeq+1, st.bestClock)
	}
	fmt.Fprintf(w, "  search clock: %.1f s\n", st.clock)

	if len(st.phases) > 0 {
		var total time.Duration
		for _, p := range st.phases {
			total += p.dur
		}
		fmt.Fprintln(w)
		fmt.Fprintln(w, "wall-time breakdown")
		fmt.Fprintf(w, "  %-28s %8s %8s %12s %7s\n", "phase", "events", "calls", "wall", "share")
		for _, p := range st.phases {
			share := 0.0
			if total > 0 {
				share = 100 * float64(p.dur) / float64(total)
			}
			fmt.Fprintf(w, "  %-28s %8d %8d %12s %6.1f%%\n",
				p.name, p.events, p.calls, p.dur.Round(time.Microsecond), share)
		}
		fmt.Fprintf(w, "  %-28s %8s %8s %12s\n", "total", "", "", total.Round(time.Microsecond))
	}

	if len(st.curve) > 0 {
		fmt.Fprintln(w)
		fmt.Fprintln(w, "convergence (best-so-far)")
		fmt.Fprintf(w, "  %6s %12s %12s   %s\n", "eval", "clock(s)", "best(s)", "config")
		for _, c := range st.curve {
			fmt.Fprintf(w, "  %6d %12.1f %12.4f   %s\n", c.seq+1, c.clock, c.best, c.config)
		}
	}
}

func statusLine(st *traceStats) string {
	parts := make([]string, 0, len(st.byStatus)+1)
	for _, s := range sortedStatusKeys(st.byStatus) {
		parts = append(parts, fmt.Sprintf("%d %s", st.byStatus[s], s))
	}
	if st.retried > 0 {
		parts = append(parts, fmt.Sprintf("%d retried (%d extra attempts)", st.retried, st.retries))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ", ")
}

func sortedStatusKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
