package main

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/broker/remote"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/search"
	"repro/internal/space"
)

// toy is a deterministic problem whose run time varies with the config,
// so the best-so-far curve has several improvement steps.
type toy struct{ spc *space.Space }

func newToy() *toy {
	return &toy{spc: space.New(
		space.NewIntRange("a", 0, 9),
		space.NewIntRange("b", 0, 9),
	)}
}

func (t *toy) Name() string        { return "toy" }
func (t *toy) Space() *space.Space { return t.spc }
func (t *toy) Evaluate(c space.Config) (float64, float64) {
	v := float64((c[0]-3)*(c[0]-3)+(c[1]-7)*(c[1]-7)) + 1
	return v, v
}

// traceSearch runs a traced RS and returns both the Result and the
// decoded trace events.
func traceSearch(t *testing.T, nmax int) (*search.Result, []obs.Event) {
	t.Helper()
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	ctx := obs.WithTracer(context.Background(), obs.New(sink))
	res := search.RS(ctx, newToy(), nmax, rng.New(5))
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return res, events
}

// TestCurveMatchesResultBestSoFar is the acceptance criterion: the
// best-so-far trajectory reconstructed from the trace alone must equal
// the one computed from the in-memory Result.
func TestCurveMatchesResultBestSoFar(t *testing.T) {
	res, events := traceSearch(t, 40)
	want := res.BestSoFar()
	got := bestSoFar(events)
	if len(got) != len(want) {
		t.Fatalf("curve length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] && !(math.IsInf(got[i], 1) && math.IsInf(want[i], 1)) {
			t.Fatalf("curve[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAnalyzeAndRender(t *testing.T) {
	res, events := traceSearch(t, 25)
	st := analyze(events)
	if st.algorithm != "RS" || st.problem != "toy" {
		t.Fatalf("header: %q %q", st.algorithm, st.problem)
	}
	if st.evals != len(res.Records) {
		t.Fatalf("evals = %d, want %d", st.evals, len(res.Records))
	}
	best, idx, _ := res.Best()
	if st.bestRun != best.RunTime || st.bestSeq != idx {
		t.Fatalf("best = %v@%d, want %v@%d", st.bestRun, st.bestSeq, best.RunTime, idx)
	}
	if st.clock != res.Elapsed() {
		t.Fatalf("clock = %v, want %v", st.clock, res.Elapsed())
	}
	// The curve rows are exactly the improvement steps.
	prev := math.Inf(1)
	steps := 0
	for i, b := range res.BestSoFar() {
		if b < prev {
			steps++
			prev = b
			_ = i
		}
	}
	if len(st.curve) != steps {
		t.Fatalf("curve rows = %d, want %d improvement steps", len(st.curve), steps)
	}

	var out bytes.Buffer
	render(&out, st)
	text := out.String()
	for _, want := range []string{"algorithm:    RS", "problem:      toy",
		"convergence (best-so-far)", "search clock:"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render output missing %q:\n%s", want, text)
		}
	}
}

func TestRunReadsFileAndStdin(t *testing.T) {
	_, events := traceSearch(t, 10)
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	for _, e := range events {
		sink.Emit(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/trace.jsonl"
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := run([]string{path}, &out); code != exitOK {
		t.Fatalf("run = %d", code)
	}
	if !strings.Contains(out.String(), "trace:") {
		t.Fatalf("no summary in output:\n%s", out.String())
	}
	// Several files merge into one trace: the same file twice holds
	// twice the events.
	out.Reset()
	if code := run([]string{path, path}, &out); code != exitOK {
		t.Fatalf("two files = %d", code)
	}
	if !strings.Contains(out.String(), fmt.Sprintf("trace: %d events", 2*len(events))) {
		t.Fatalf("merged summary wrong:\n%s", out.String())
	}
	if code := run([]string{}, &out); code != exitUsage {
		t.Fatalf("no args = %d, want %d", exitUsage, exitUsage)
	}
	if code := run([]string{"-bogus"}, &out); code != exitUsage {
		t.Fatalf("flag-like arg = %d, want %d", exitUsage, exitUsage)
	}
	if code := run([]string{path + ".missing"}, &out); code != exitError {
		t.Fatalf("missing file = %d, want %d", code, exitError)
	}
}

// slowToy burns a little real wall time per evaluation so a distributed
// run keeps several tasks in flight at once.
type slowToy struct {
	*toy
	delay time.Duration
}

func (s *slowToy) Evaluate(c space.Config) (float64, float64) {
	time.Sleep(s.delay)
	return s.toy.Evaluate(c)
}

// TestStitchDistributedTrace is the stitching acceptance criterion: a
// distributed run writes one coordinator trace and one trace per remote
// worker; tracestat merges the three files into per-task causal chains
// whose reconstructed evaluation count equals the broker's own
// broker.submits counter exactly, with both workers' evaluations
// attributed in the utilization table.
func TestStitchDistributedTrace(t *testing.T) {
	const nmax = 30
	dir := t.TempDir()

	// Coordinator: JSONL trace plus the live metrics registry whose
	// broker.* counters the stitched view must reproduce.
	var coordBuf bytes.Buffer
	coordSink := obs.NewJSONLSink(&coordBuf)
	reg := obs.NewRegistry()
	tr := obs.New(obs.Multi(coordSink, obs.NewMetricsSink(reg)))

	b := broker.New(broker.Options{External: true, Retries: 100, Backoff: 100 * time.Microsecond})
	defer b.Close()
	pool := remote.NewPool(b, remote.PoolOptions{
		LeaseTicks:     8,
		TickEvery:      5 * time.Millisecond,
		MaxMissedBeats: 60,
	})
	defer pool.Close()

	// A few milliseconds of real work per evaluation keep several tasks
	// outstanding at once, so the least-loaded dispatcher has a reason
	// to use both workers.
	p := &slowToy{toy: newToy(), delay: 2 * time.Millisecond}
	guard := remote.NewEvalGuard()
	var workerBufs [2]bytes.Buffer
	var workerSinks [2]*obs.JSONLSink
	wctx, cancel := context.WithCancel(context.Background())
	var wwg sync.WaitGroup
	defer wwg.Wait()
	defer cancel()
	for i := 0; i < 2; i++ {
		workerSinks[i] = obs.NewJSONLSink(&workerBufs[i])
		w := &remote.Worker{
			Resolve:     func(string) (search.Problem, error) { return p, nil },
			Guard:       guard,
			Label:       fmt.Sprintf("w%d", i+1),
			BeatEvery:   2 * time.Millisecond,
			Backoff:     time.Millisecond,
			BackoffCap:  10 * time.Millisecond,
			MaxAttempts: 1 << 20,
			Tracer:      obs.New(workerSinks[i]),
		}
		dial := func(ctx context.Context) (net.Conn, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			client, server := net.Pipe()
			go func() {
				if _, err := pool.AddConn(server); err != nil {
					_ = server.Close()
				}
			}()
			return client, nil
		}
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			_ = w.Run(wctx, dial)
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for pool.Sessions() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers never connected")
		}
		time.Sleep(time.Millisecond)
	}

	// Drive the broker with concurrent evaluations so the least-loaded
	// dispatcher spreads tasks across both workers.
	ctx := obs.WithTracer(context.Background(), tr)
	ctx = obs.WithTrace(ctx, obs.TraceContext{TraceID: "stitch-test", SpanID: obs.RootSpanID})
	var evalWG sync.WaitGroup
	var okCount int64
	var okMu sync.Mutex
	for i := 0; i < nmax; i++ {
		evalWG.Add(1)
		go func(i int) {
			defer evalWG.Done()
			out := b.Evaluate(ctx, p, space.Config{i % 10, i / 10})
			if out.Status == search.StatusOK {
				okMu.Lock()
				okCount++
				okMu.Unlock()
			}
		}(i)
	}
	evalWG.Wait()
	if okCount != nmax {
		t.Fatalf("%d of %d evaluations succeeded", okCount, nmax)
	}
	cancel()
	wwg.Wait()

	paths := []string{filepath.Join(dir, "coord.jsonl")}
	if err := coordSink.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(paths[0], coordBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	for i := range workerSinks {
		if err := workerSinks[i].Flush(); err != nil {
			t.Fatal(err)
		}
		wp := filepath.Join(dir, fmt.Sprintf("worker%d.jsonl", i+1))
		if err := os.WriteFile(wp, workerBufs[i].Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, wp)
	}

	var merged []obs.Event
	for _, path := range paths {
		evs, err := readOne(path)
		if err != nil {
			t.Fatal(err)
		}
		merged = append(merged, evs...)
	}
	d := stitch(merged)
	if d == nil {
		t.Fatal("stitch found no spans")
	}
	if d.traceID != "stitch-test" {
		t.Fatalf("trace id %q, want stitch-test", d.traceID)
	}

	submits := reg.Counter(obs.MetricBrokerSubmits).Value()
	if submits == 0 {
		t.Fatal("broker recorded no submits")
	}
	if int64(d.evals) != submits {
		t.Fatalf("stitched evaluations = %d, broker.submits = %d — the merged trace must reconstruct the broker's count exactly", d.evals, submits)
	}
	if len(d.tasks) != nmax {
		t.Fatalf("stitched %d tasks, want %d", len(d.tasks), nmax)
	}
	// Every task's chain must carry its causal backbone: enqueue on the
	// coordinator, a worker-eval from one of the worker files.
	for seq, task := range d.tasks {
		if task.enqueueWall == 0 {
			t.Fatalf("task %d has no enqueue span", seq)
		}
		ran := false
		for _, a := range task.attempts {
			if a.evalWorker != "" {
				ran = true
			}
		}
		if !ran {
			t.Fatalf("task %d has no worker-eval span", seq)
		}
	}
	if len(d.workers) != 2 || d.workers["w1"] == nil || d.workers["w2"] == nil {
		t.Fatalf("utilization table %v, want both w1 and w2", d.workers)
	}

	var out bytes.Buffer
	if code := run(paths, &out); code != exitOK {
		t.Fatalf("run = %d", code)
	}
	text := out.String()
	for _, want := range []string{
		"distributed trace",
		"trace id:     stitch-test",
		fmt.Sprintf("evaluations:  %d", submits),
		"per-task timeline",
		"worker utilization",
		"w1", "w2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

// TestRunSkipsTornTail is the degraded-input regression: a trace whose
// final line was cut mid-write (worker killed, disk full) still renders
// — the torn line is skipped with a warning, not a fatal parse error.
func TestRunSkipsTornTail(t *testing.T) {
	_, events := traceSearch(t, 10)
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	for _, e := range events {
		sink.Emit(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	torn := append(buf.Bytes(), []byte(`{"kind":"eval","seq":999,"val`)...)
	path := t.TempDir() + "/torn.jsonl"
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := run([]string{path}, &out); code != exitOK {
		t.Fatalf("run on torn trace = %d, want %d", code, exitOK)
	}
	if !strings.Contains(out.String(), fmt.Sprintf("trace: %d events", len(events))) {
		t.Fatalf("torn tail leaked into the summary:\n%s", out.String())
	}
}
