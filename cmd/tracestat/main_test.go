package main

import (
	"bytes"
	"context"
	"math"
	"os"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/search"
	"repro/internal/space"
)

// toy is a deterministic problem whose run time varies with the config,
// so the best-so-far curve has several improvement steps.
type toy struct{ spc *space.Space }

func newToy() *toy {
	return &toy{spc: space.New(
		space.NewIntRange("a", 0, 9),
		space.NewIntRange("b", 0, 9),
	)}
}

func (t *toy) Name() string        { return "toy" }
func (t *toy) Space() *space.Space { return t.spc }
func (t *toy) Evaluate(c space.Config) (float64, float64) {
	v := float64((c[0]-3)*(c[0]-3)+(c[1]-7)*(c[1]-7)) + 1
	return v, v
}

// traceSearch runs a traced RS and returns both the Result and the
// decoded trace events.
func traceSearch(t *testing.T, nmax int) (*search.Result, []obs.Event) {
	t.Helper()
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	ctx := obs.WithTracer(context.Background(), obs.New(sink))
	res := search.RS(ctx, newToy(), nmax, rng.New(5))
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return res, events
}

// TestCurveMatchesResultBestSoFar is the acceptance criterion: the
// best-so-far trajectory reconstructed from the trace alone must equal
// the one computed from the in-memory Result.
func TestCurveMatchesResultBestSoFar(t *testing.T) {
	res, events := traceSearch(t, 40)
	want := res.BestSoFar()
	got := bestSoFar(events)
	if len(got) != len(want) {
		t.Fatalf("curve length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] && !(math.IsInf(got[i], 1) && math.IsInf(want[i], 1)) {
			t.Fatalf("curve[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAnalyzeAndRender(t *testing.T) {
	res, events := traceSearch(t, 25)
	st := analyze(events)
	if st.algorithm != "RS" || st.problem != "toy" {
		t.Fatalf("header: %q %q", st.algorithm, st.problem)
	}
	if st.evals != len(res.Records) {
		t.Fatalf("evals = %d, want %d", st.evals, len(res.Records))
	}
	best, idx, _ := res.Best()
	if st.bestRun != best.RunTime || st.bestSeq != idx {
		t.Fatalf("best = %v@%d, want %v@%d", st.bestRun, st.bestSeq, best.RunTime, idx)
	}
	if st.clock != res.Elapsed() {
		t.Fatalf("clock = %v, want %v", st.clock, res.Elapsed())
	}
	// The curve rows are exactly the improvement steps.
	prev := math.Inf(1)
	steps := 0
	for i, b := range res.BestSoFar() {
		if b < prev {
			steps++
			prev = b
			_ = i
		}
	}
	if len(st.curve) != steps {
		t.Fatalf("curve rows = %d, want %d improvement steps", len(st.curve), steps)
	}

	var out bytes.Buffer
	render(&out, st)
	text := out.String()
	for _, want := range []string{"algorithm:    RS", "problem:      toy",
		"convergence (best-so-far)", "search clock:"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render output missing %q:\n%s", want, text)
		}
	}
}

func TestRunReadsFileAndStdin(t *testing.T) {
	_, events := traceSearch(t, 10)
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	for _, e := range events {
		sink.Emit(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/trace.jsonl"
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := run([]string{path}, &out); code != exitOK {
		t.Fatalf("run = %d", code)
	}
	if !strings.Contains(out.String(), "trace:") {
		t.Fatalf("no summary in output:\n%s", out.String())
	}
	if code := run([]string{path, "extra"}, &out); code != exitUsage {
		t.Fatalf("usage error = %d, want %d", code, exitUsage)
	}
	if code := run([]string{path + ".missing"}, &out); code != exitError {
		t.Fatalf("missing file = %d, want %d", code, exitError)
	}
}
