// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-exp all|fig1,fig3,table4] [-seed N] [-quick]
//	            [-nmax N] [-pool N] [-trees N] [-workers N] [-outdir DIR]
//	            [-values] [-metrics] [-metrics-addr ADDR] [-resume DIR]
//
// Each experiment prints its report to stdout. With -outdir, the tables
// are additionally written as CSV, the named values as <id>-values.txt,
// and each experiment's telemetry metrics snapshot (evaluation counts by
// status, prune skips, model latency) as <id>-metrics.txt; every file is
// written to a temporary name and atomically renamed, so a crash never
// leaves a half-written report. -metrics also prints the snapshot to
// stdout after each report. -metrics-addr serves a live cross-
// experiment aggregate of the same counters over HTTP (/metrics, with
// /healthz for probes) for the duration of the sweep.
//
// -workers N bounds the worker goroutines each experiment spreads its
// independent cells over (0, the default, uses one per CPU). Every cell
// derives its randomness from its own seed, so reports are bit-identical
// for every worker count — -workers trades wall time only.
//
// With -outdir the command also keeps a progress file (progress.txt)
// naming each completed experiment. SIGINT or SIGTERM stops the sweep at
// the next experiment boundary and exits with code 3; -resume DIR
// (implies -outdir DIR) skips the experiments the progress file records,
// after checking it was written under the same configuration.
//
// Exit codes: 0 success, 1 runtime failure, 2 bad usage, 3 interrupted
// (progress saved when -outdir/-resume is set).
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

const (
	exitOK          = 0
	exitError       = 1
	exitUsage       = 2
	exitInterrupted = 3
)

func main() { os.Exit(run()) }

func run() int {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		seed    = flag.Uint64("seed", 2016, "random seed")
		quick   = flag.Bool("quick", false, "reduced scale (for smoke runs)")
		nmax    = flag.Int("nmax", 0, "evaluation budget (default: paper's 100)")
		pool    = flag.Int("pool", 0, "configuration pool size (default: paper's 10000)")
		trees   = flag.Int("trees", 0, "surrogate forest size (default 100)")
		outdir  = flag.String("outdir", "", "directory for CSV/value exports")
		values  = flag.Bool("values", false, "also print the named scalar values")
		metrics = flag.Bool("metrics", false, "also print each experiment's telemetry metrics snapshot")
		workers = flag.Int("workers", 0, "worker goroutines per experiment (0 = one per CPU; results identical for any value)")
		broker  = flag.Bool("broker", false, "route evaluations through the fault-tolerant broker (results identical either way)")
		brokerW = flag.Int("broker-workers", 0, "broker worker shards (0 = broker default; implies -broker)")
		hedge   = flag.Duration("hedge-after", 0, "broker hedged re-dispatch delay for stragglers (0 disables; implies -broker)")
		brokerR = flag.Bool("broker-remote", false, "serve evaluations to remote workers (cmd/brokerd) instead of in-process shards (requires -workers-addr)")
		wrkAddr = flag.String("workers-addr", "", "listen address for remote workers: unix:/path or [tcp:]host:port (implies -broker-remote)")
		resume  = flag.String("resume", "", "resume an interrupted sweep from DIR's progress file (implies -outdir DIR)")
		mAddr   = flag.String("metrics-addr", "", "serve a live cross-experiment telemetry snapshot over HTTP on ADDR (/metrics and /healthz)")
	)
	flag.Parse()

	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if explicit["broker-workers"] && *brokerW <= 0 {
		fmt.Fprintf(os.Stderr, "experiments: -broker-workers must be > 0, got %d\n", *brokerW)
		return exitUsage
	}
	if *hedge < 0 {
		fmt.Fprintf(os.Stderr, "experiments: -hedge-after must be >= 0, got %v\n", *hedge)
		return exitUsage
	}
	remoteOn := *brokerR || *wrkAddr != ""
	if remoteOn && *wrkAddr == "" {
		fmt.Fprintln(os.Stderr, "experiments: -broker-remote requires -workers-addr (where cmd/brokerd workers connect)")
		return exitUsage
	}
	if remoteOn && (*broker || *brokerW > 0) {
		fmt.Fprintln(os.Stderr, "experiments: -broker-remote and in-process broker shards (-broker/-broker-workers) are mutually exclusive")
		return exitUsage
	}

	if *resume != "" {
		if *outdir != "" && *outdir != *resume {
			fmt.Fprintln(os.Stderr, "experiments: -outdir and -resume name different directories")
			return exitUsage
		}
		*outdir = *resume
	}

	cfg := experiments.Config{Seed: *seed, NMax: *nmax, PoolSize: *pool, Trees: *trees}
	if *quick {
		cfg = experiments.Quick(*seed)
	}
	cfg.Workers = *workers
	if remoteOn {
		cfg.RemoteWorkersAddr = *wrkAddr
		cfg.BrokerHedgeAfter = *hedge
	} else if *broker || *brokerW > 0 || *hedge > 0 {
		cfg.BrokerWorkers = *brokerW
		if cfg.BrokerWorkers <= 0 {
			cfg.BrokerWorkers = 4
		}
		cfg.BrokerHedgeAfter = *hedge
	}
	// -workers and the broker flags are deliberately absent from the
	// configuration line: reports are workers- and broker-invariant
	// (asserted by TestParallelMatchesSerial and TestBrokerMatchesDirect),
	// so a sweep may be resumed under a different worker count or broker
	// shape without forking the results.
	cfgLine := fmt.Sprintf("# cfg seed=%d quick=%v nmax=%d pool=%d trees=%d",
		*seed, *quick, *nmax, *pool, *trees)

	ids := experiments.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}

	completed, err := loadProgress(*outdir, cfgLine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return exitUsage
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// The live metrics endpoint aggregates across the whole sweep: each
	// experiment composes the context tracer's sink into its own, so the
	// served registry sums every experiment run so far.
	if *mAddr != "" {
		reg := obs.NewRegistry()
		srv, err := obs.ServeMetrics(*mAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: metrics-addr: %v\n", err)
			return exitError
		}
		fmt.Fprintf(os.Stderr, "experiments: metrics at http://%s/metrics\n", srv.Addr())
		// Best-effort teardown: the process is exiting either way.
		defer func() { _ = srv.Close() }()
		ctx = obs.WithTracer(ctx, obs.New(obs.NewMetricsSink(reg)))
	}

	interrupted := false
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if completed[id] {
			fmt.Printf("[%s already completed, skipped]\n\n", id)
			continue
		}
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		start := time.Now()
		rep, err := experiments.Run(ctx, id, cfg)
		if err != nil {
			if ctx.Err() != nil {
				interrupted = true
				break
			}
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return exitError
		}
		fmt.Println(rep.Text)
		if *values {
			fmt.Println("values:")
			fmt.Print(experiments.Summary(rep))
		}
		if *metrics && rep.Metrics != "" {
			fmt.Println("metrics:")
			fmt.Print(rep.Metrics)
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))

		if *outdir != "" {
			if err := export(*outdir, rep); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: export: %v\n", err)
				return exitError
			}
			completed[id] = true
			if err := writeProgress(*outdir, cfgLine, ids, completed); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: progress: %v\n", err)
				return exitError
			}
		}
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "experiments: interrupted")
		if *outdir != "" {
			fmt.Fprintf(os.Stderr, "experiments: progress saved; continue with: experiments -resume %s\n", *outdir)
		}
		return exitInterrupted
	}
	return exitOK
}

const progressFile = "progress.txt"

// loadProgress reads dir's progress file: the configuration line it was
// written under (refusing a resume under a different one) followed by
// one completed experiment id per line.
func loadProgress(dir, cfgLine string) (map[string]bool, error) {
	completed := map[string]bool{}
	if dir == "" {
		return completed, nil
	}
	data, err := os.ReadFile(filepath.Join(dir, progressFile))
	if os.IsNotExist(err) {
		return completed, nil
	}
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 || lines[0] != cfgLine {
		return nil, fmt.Errorf("progress file %s was written under %q, run is %q; pass matching flags or remove it",
			filepath.Join(dir, progressFile), strings.TrimPrefix(lines[0], "# cfg "), strings.TrimPrefix(cfgLine, "# cfg "))
	}
	for _, line := range lines[1:] {
		if line = strings.TrimSpace(line); line != "" {
			completed[line] = true
		}
	}
	return completed, nil
}

// writeProgress atomically replaces the progress file, listing completed
// ids in sweep order.
func writeProgress(dir, cfgLine string, ids []string, completed map[string]bool) error {
	var b strings.Builder
	b.WriteString(cfgLine)
	b.WriteByte('\n')
	for _, id := range ids {
		if id = strings.TrimSpace(id); completed[id] {
			b.WriteString(id)
			b.WriteByte('\n')
		}
	}
	return writeFileAtomic(filepath.Join(dir, progressFile), []byte(b.String()))
}

func export(dir string, rep *experiments.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(dir, rep.ID+".txt"), []byte(rep.Text)); err != nil {
		return err
	}
	if len(rep.Values) > 0 {
		path := filepath.Join(dir, rep.ID+"-values.txt")
		if err := writeFileAtomic(path, []byte(experiments.Summary(rep))); err != nil {
			return err
		}
	}
	if rep.Metrics != "" {
		path := filepath.Join(dir, rep.ID+"-metrics.txt")
		if err := writeFileAtomic(path, []byte(rep.Metrics)); err != nil {
			return err
		}
	}
	for i, tb := range rep.Tables {
		var buf bytes.Buffer
		if err := tb.WriteCSV(&buf); err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("%s-table%d.csv", rep.ID, i))
		if err := writeFileAtomic(path, buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// writeFileAtomic writes data to a temporary file in path's directory,
// fsyncs it, and renames it over path: readers see the old report or the
// new one, never a torn mix.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
