// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-exp all|fig1,fig3,table4] [-seed N] [-quick]
//	            [-nmax N] [-pool N] [-trees N] [-outdir DIR] [-values]
//
// Each experiment prints its report to stdout. With -outdir, the tables
// are additionally written as CSV and the named values as .txt files.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		seed   = flag.Uint64("seed", 2016, "random seed")
		quick  = flag.Bool("quick", false, "reduced scale (for smoke runs)")
		nmax   = flag.Int("nmax", 0, "evaluation budget (default: paper's 100)")
		pool   = flag.Int("pool", 0, "configuration pool size (default: paper's 10000)")
		trees  = flag.Int("trees", 0, "surrogate forest size (default 100)")
		outdir = flag.String("outdir", "", "directory for CSV/value exports")
		values = flag.Bool("values", false, "also print the named scalar values")
	)
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, NMax: *nmax, PoolSize: *pool, Trees: *trees}
	if *quick {
		cfg = experiments.Quick(*seed)
	}

	ids := experiments.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		rep, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep.Text)
		if *values {
			fmt.Println("values:")
			fmt.Print(experiments.Summary(rep))
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))

		if *outdir != "" {
			if err := export(*outdir, rep); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: export: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func export(dir string, rep *experiments.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, rep.ID+".txt"), []byte(rep.Text), 0o644); err != nil {
		return err
	}
	if len(rep.Values) > 0 {
		path := filepath.Join(dir, rep.ID+"-values.txt")
		if err := os.WriteFile(path, []byte(experiments.Summary(rep)), 0o644); err != nil {
			return err
		}
	}
	for i, tb := range rep.Tables {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("%s-table%d.csv", rep.ID, i)))
		if err != nil {
			return err
		}
		if err := tb.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
