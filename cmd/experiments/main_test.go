package main

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestExportWritesArtifacts(t *testing.T) {
	rep, err := experiments.Run(context.Background(), "table3", experiments.Quick(1))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := export(dir, rep); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table3.txt", "table3-values.txt", "table3-table0.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
	}
	data, _ := os.ReadFile(filepath.Join(dir, "table3-table0.csv"))
	if len(data) == 0 {
		t.Fatal("empty CSV")
	}
	// Atomic writes must not leave temporary files behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temporary file %s", e.Name())
		}
	}
}

func TestProgressRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfgLine := "# cfg seed=1 quick=true nmax=0 pool=0 trees=0"
	ids := []string{"fig1", "fig2", "table3"}

	got, err := loadProgress(dir, cfgLine)
	if err != nil || len(got) != 0 {
		t.Fatalf("fresh dir: got %v, %v", got, err)
	}
	if err := writeProgress(dir, cfgLine, ids, map[string]bool{"fig2": true, "fig1": true}); err != nil {
		t.Fatal(err)
	}
	got, err = loadProgress(dir, cfgLine)
	if err != nil {
		t.Fatal(err)
	}
	if !got["fig1"] || !got["fig2"] || got["table3"] {
		t.Fatalf("progress round-trip: %v", got)
	}
	// A different configuration must be refused, not silently mixed.
	if _, err := loadProgress(dir, "# cfg seed=2 quick=true nmax=0 pool=0 trees=0"); err == nil {
		t.Fatal("mismatched configuration accepted")
	}
}

func TestWriteFileAtomicReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.txt")
	if err := writeFileAtomic(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := writeFileAtomic(path, []byte("new")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "new" {
		t.Fatalf("got %q, %v", data, err)
	}
}

// TestMain lets the test binary stand in for the experiments command:
// when re-exec'd with EXPERIMENTS_E2E_MAIN=1 it runs the real main
// path, so the flag-validation tests exercise the production parsing.
func TestMain(m *testing.M) {
	if os.Getenv("EXPERIMENTS_E2E_MAIN") == "1" {
		os.Exit(run())
	}
	os.Exit(m.Run())
}

// experimentsCmd re-execs the test binary as the experiments command.
func experimentsCmd(args ...string) (*exec.Cmd, *bytes.Buffer) {
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "EXPERIMENTS_E2E_MAIN=1")
	out := new(bytes.Buffer)
	cmd.Stdout = out
	cmd.Stderr = out
	return cmd, out
}

// TestBrokerFlagValidation pins the broker flag contract: explicitly
// non-positive shard counts, negative hedge delays, and incoherent
// remote flags exit 2 with a clear message instead of being silently
// coerced to a default.
func TestBrokerFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"broker-workers zero", []string{"-broker-workers", "0"}, "-broker-workers must be > 0"},
		{"broker-workers negative", []string{"-broker-workers", "-2"}, "-broker-workers must be > 0"},
		{"hedge-after negative", []string{"-hedge-after", "-5ms"}, "-hedge-after must be >= 0"},
		{"broker-remote without addr", []string{"-broker-remote"}, "-broker-remote requires -workers-addr"},
		{"remote and shards", []string{"-workers-addr", "unix:/tmp/x.sock", "-broker"}, "mutually exclusive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			args := append([]string{"-exp", "table3", "-quick"}, tc.args...)
			cmd, out := experimentsCmd(args...)
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("expected exit error, got %v; output:\n%s", err, out)
			}
			if code := ee.ExitCode(); code != exitUsage {
				t.Fatalf("exit %d, want %d; output:\n%s", code, exitUsage, out)
			}
			if !strings.Contains(out.String(), tc.want) {
				t.Fatalf("output missing %q:\n%s", tc.want, out)
			}
		})
	}
}

// TestBrokerFlagAloneStillDefaults pins the compatible half of the
// contract: -broker with no explicit shard count keeps defaulting
// instead of erroring (only an explicit non-positive count is refused).
func TestBrokerFlagAloneStillDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec trial skipped in -short mode")
	}
	cmd, out := experimentsCmd("-exp", "table3", "-quick", "-broker")
	if err := cmd.Run(); err != nil {
		t.Fatalf("experiments -broker: %v; output:\n%s", err, out)
	}
}
