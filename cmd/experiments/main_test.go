package main

import (
	"context"

	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestExportWritesArtifacts(t *testing.T) {
	rep, err := experiments.Run(context.Background(), "table3", experiments.Quick(1))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := export(dir, rep); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table3.txt", "table3-values.txt", "table3-table0.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
	}
	data, _ := os.ReadFile(filepath.Join(dir, "table3-table0.csv"))
	if len(data) == 0 {
		t.Fatal("empty CSV")
	}
	// Atomic writes must not leave temporary files behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temporary file %s", e.Name())
		}
	}
}

func TestProgressRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfgLine := "# cfg seed=1 quick=true nmax=0 pool=0 trees=0"
	ids := []string{"fig1", "fig2", "table3"}

	got, err := loadProgress(dir, cfgLine)
	if err != nil || len(got) != 0 {
		t.Fatalf("fresh dir: got %v, %v", got, err)
	}
	if err := writeProgress(dir, cfgLine, ids, map[string]bool{"fig2": true, "fig1": true}); err != nil {
		t.Fatal(err)
	}
	got, err = loadProgress(dir, cfgLine)
	if err != nil {
		t.Fatal(err)
	}
	if !got["fig1"] || !got["fig2"] || got["table3"] {
		t.Fatalf("progress round-trip: %v", got)
	}
	// A different configuration must be refused, not silently mixed.
	if _, err := loadProgress(dir, "# cfg seed=2 quick=true nmax=0 pool=0 trees=0"); err == nil {
		t.Fatal("mismatched configuration accepted")
	}
}

func TestWriteFileAtomicReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.txt")
	if err := writeFileAtomic(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := writeFileAtomic(path, []byte("new")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "new" {
		t.Fatalf("got %q, %v", data, err)
	}
}
