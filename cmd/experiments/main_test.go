package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
)

func TestExportWritesArtifacts(t *testing.T) {
	rep, err := experiments.Run("table3", experiments.Quick(1))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := export(dir, rep); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table3.txt", "table3-values.txt", "table3-table0.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
	}
	data, _ := os.ReadFile(filepath.Join(dir, "table3-table0.csv"))
	if len(data) == 0 {
		t.Fatal("empty CSV")
	}
}
