// Command correlate reproduces Figure 1-style cross-machine correlation
// studies: evaluate N random configurations of a kernel on two machines
// and report Pearson/Spearman/Kendall coefficients with a scatter plot.
//
// Usage:
//
//	correlate -problem LU -a Westmere -b Sandybridge [-n 200] [-seed 2016]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/miniapps"
	"repro/internal/rng"
	"repro/internal/search"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tabulate"
)

func main() {
	var (
		problem = flag.String("problem", "LU", "MM|ATAX|COR|LU|HPL|RT")
		aName   = flag.String("a", "Westmere", "first machine")
		bName   = flag.String("b", "Sandybridge", "second machine")
		n       = flag.Int("n", 200, "number of random configurations")
		seed    = flag.Uint64("seed", 2016, "random seed")
	)
	flag.Parse()

	pa, err := build(*problem, *aName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "correlate:", err)
		os.Exit(1)
	}
	pb, err := build(*problem, *bName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "correlate:", err)
		os.Exit(1)
	}

	seq := search.Sequence(pa.Space(), *n, rng.NewNamed(*seed, "correlate"))
	var xs, ys []float64
	for _, c := range seq {
		ra, _ := pa.Evaluate(c)
		rb, _ := pb.Evaluate(c)
		xs = append(xs, ra)
		ys = append(ys, rb)
	}
	rp, _ := stats.Pearson(xs, ys)
	rs, _ := stats.Spearman(xs, ys)
	tau, _ := stats.Kendall(xs, ys)

	fmt.Printf("%s: %d configurations on %s and %s\n", *problem, len(seq), *aName, *bName)
	fmt.Printf("pearson=%.3f  spearman=%.3f  kendall=%.3f\n\n", rp, rs, tau)
	fmt.Print(tabulate.Scatter("run-time correlation",
		*aName+" [s]", *bName+" [s]", xs, ys, 64, 18))
}

func build(name, machineN string) (search.Problem, error) {
	m, err := machine.ByName(machineN)
	if err != nil {
		return nil, err
	}
	switch name {
	case "HPL":
		return miniapps.NewProblem(miniapps.HPL(), m), nil
	case "RT":
		return miniapps.NewProblem(miniapps.RT(), m), nil
	default:
		k, err := kernels.ByName(name)
		if err != nil {
			return nil, err
		}
		return kernels.NewProblem(k, sim.Target{Machine: m, Compiler: machine.GNU, Threads: 1}), nil
	}
}
