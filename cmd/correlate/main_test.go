package main

import "testing"

func TestBuild(t *testing.T) {
	for _, name := range []string{"LU", "HPL", "RT"} {
		p, err := build(name, "Power7")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Space().NumParams() == 0 {
			t.Fatalf("%s: empty space", name)
		}
	}
	if _, err := build("LU", "Cray-1"); err == nil {
		t.Fatal("unknown machine accepted")
	}
	if _, err := build("FFT", "Power7"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}
