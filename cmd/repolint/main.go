// Command repolint is the repository's static-analysis gate: it loads
// every package of the module with the stdlib type checker and runs the
// project-specific analyzer suite of internal/analysis — seven
// package-scoped analyzers (nodeterm, ctxflow, rngstream, floatcmp,
// errsink, obstime, lockshape) plus two module-scoped, call-graph-aware
// ones (detflow, wiresafe) — which mechanically enforces the
// determinism, context-threading, rng-stream, float-comparison,
// error-handling, wire-stability, and lock-shape invariants the paper's
// common-random-numbers methodology depends on.
//
// Usage:
//
//	repolint [-json] [-list] [-sarif file] [-cache file]
//	         [-baseline file] [-write-baseline] [packages]
//
// Packages default to ./... (the whole module). Patterns are matched
// against import paths: ./... selects everything, a ./dir/... prefix
// selects a subtree, and a plain path selects one package. Findings
// print as file:line:col: analyzer: message, or as one JSON object per
// line with -json (each object carries the analyzer-suite version and,
// for interprocedural findings, the full source→sink call chain;
// non-finite witness values follow the internal/obs trace conventions).
// -sarif additionally writes the findings as a SARIF 2.1.0 log for CI
// code-scanning ingestion.
//
// -cache names an on-disk cache file keyed by the content hash of every
// lintable source file (plus the suite version, baseline, and package
// selection): a warm run replays the previous verdict without
// type-checking anything and reports the hit with its timing on stderr.
//
// -baseline names the committed suppression-debt ledger (default:
// lint-baseline.json at the module root when present). Every
// //lint:ignore in non-test code must be recorded there, and the
// per-analyzer budgets cap the directive counts — the debt can only
// shrink without a reviewed re-level via -write-baseline, which rewrites
// the ledger from the current tree and exits.
//
// Suppress a finding with
//
//	//lint:ignore <analyzer> <reason>
//
// on (or directly above) the offending line, or //lint:file-ignore for
// a whole file; unused and malformed directives are themselves
// findings.
//
// Exit status:
//
//	0 — clean (also: -list, -write-baseline, and -h/-help)
//	1 — findings (analyzer diagnostics, directive hygiene, or
//	    suppression-budget violations)
//	2 — operational failure (bad flags, unreadable tree, type errors,
//	    unwritable output)
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit one JSON diagnostic per line instead of text")
	list := fs.Bool("list", false, "list the analyzers and the invariants they guard, then exit")
	sarifPath := fs.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	cachePath := fs.String("cache", "", "cache file: replay the verdict when no lintable source changed")
	baselinePath := fs.String("baseline", "", "suppression baseline file (default: lint-baseline.json at the module root, when present)")
	writeBaseline := fs.Bool("write-baseline", false, "rewrite the suppression baseline from the current tree and exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			scope := "package"
			if a.RunModule != nil {
				scope = "module "
			}
			fmt.Printf("%-10s [%s] %s\n", a.Name, scope, a.Doc)
		}
		return 0
	}

	start := time.Now()
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 2
	}
	root, err := moduleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// Resolve the baseline: an explicit flag must exist; the default
	// location is optional.
	bp := *baselinePath
	if bp == "" {
		if def := filepath.Join(root, "lint-baseline.json"); fileExists(def) {
			bp = def
		}
	} else if !*writeBaseline && !fileExists(bp) {
		fmt.Fprintf(os.Stderr, "repolint: baseline %s does not exist\n", bp)
		return 2
	}
	var baselineBytes []byte
	if bp != "" {
		baselineBytes, _ = os.ReadFile(bp)
	}

	// Cache probe: the key covers every byte the verdict depends on, so
	// a hit can skip loading the module entirely.
	var cacheKey string
	if *cachePath != "" && !*writeBaseline {
		cacheKey, err = analysis.CacheKey(root, patterns, baselineBytes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			return 2
		}
		if entry, ok := analysis.LoadCache(*cachePath, cacheKey); ok {
			diags := entry.Restore()
			fmt.Fprintf(os.Stderr, "repolint: cache hit (%d package(s), %s)\n",
				entry.Packages, time.Since(start).Round(time.Millisecond))
			return emit(diags, root, entry.Packages, *jsonOut, *sarifPath)
		}
	}

	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 2
	}
	selected, err := selectPackages(loader, pkgs, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 2
	}

	if *writeBaseline {
		target := bp
		if target == "" {
			target = filepath.Join(root, "lint-baseline.json")
		}
		b := analysis.NewBaseline(analysis.CollectIgnores(loader.Root, selected))
		if err := analysis.WriteBaselineFile(target, b); err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "repolint: wrote %s (%d ignore(s); budgets: %s)\n",
			target, len(b.Ignores), b.BudgetSummary())
		return 0
	}

	diags := analysis.Lint(selected, analysis.All())
	if bp != "" {
		b, err := analysis.LoadBaseline(bp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			return 2
		}
		diags = append(diags, analysis.CheckBaseline(b, analysis.CollectIgnores(loader.Root, selected))...)
	}

	if *cachePath != "" {
		if err := analysis.WriteCache(*cachePath, cacheKey, loader.Root, len(selected), diags); err != nil {
			fmt.Fprintln(os.Stderr, "repolint: cache write failed:", err)
		}
	}
	fmt.Fprintf(os.Stderr, "repolint: analyzed %d package(s) in %s (cache %s)\n",
		len(selected), time.Since(start).Round(time.Millisecond), cacheStatus(*cachePath))
	return emit(diags, loader.Root, len(selected), *jsonOut, *sarifPath)
}

func cacheStatus(path string) string {
	if path == "" {
		return "off"
	}
	return "miss"
}

// emit renders the findings on every requested surface and converts
// them into the exit code.
func emit(diags []analysis.Diagnostic, root string, npkgs int, jsonOut bool, sarifPath string) int {
	var err error
	if jsonOut {
		err = analysis.WriteJSON(os.Stdout, root, diags)
	} else {
		err = analysis.WriteText(os.Stdout, root, diags)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 2
	}
	if sarifPath != "" {
		f, err := os.Create(sarifPath)
		if err == nil {
			err = analysis.WriteSARIF(f, root, analysis.All(), diags)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			return 2
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s) in %d package(s)\n", len(diags), npkgs)
		return 1
	}
	return 0
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// moduleRoot finds the go.mod directory at or above dir without
// constructing a loader (the cache fast path must not pay for one).
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod at or above %s", abs)
		}
		d = parent
	}
}

// selectPackages filters the loaded packages by go-style patterns
// interpreted relative to the module root.
func selectPackages(loader *analysis.Loader, pkgs []*analysis.Package, patterns []string) ([]*analysis.Package, error) {
	keep := map[string]bool{}
	for _, pat := range patterns {
		matched := false
		for _, pkg := range pkgs {
			if matchPattern(loader.ModulePath, pat, pkg.Path) {
				keep[pkg.Path] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	var out []*analysis.Package
	for _, pkg := range pkgs {
		if keep[pkg.Path] {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// matchPattern reports whether the import path matches one go-style
// pattern: "./..." everything, "./x/..." a subtree, "./x" or an import
// path one package.
func matchPattern(modPath, pat, pkgPath string) bool {
	pat = filepath.ToSlash(pat)
	// Normalize a relative pattern to an import-path pattern.
	if pat == "." || pat == "./..." {
		return true
	}
	if rest, ok := strings.CutPrefix(pat, "./"); ok {
		pat = modPath + "/" + rest
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok {
		return pkgPath == sub || strings.HasPrefix(pkgPath, sub+"/")
	}
	return pkgPath == pat
}
