// Command repolint is the repository's static-analysis gate: it loads
// every package of the module with the stdlib type checker and runs the
// project-specific analyzer suite of internal/analysis, which
// mechanically enforces the determinism, context-threading, rng-stream,
// float-comparison, and error-handling invariants the paper's
// common-random-numbers methodology depends on.
//
// Usage:
//
//	repolint [-json] [-list] [packages]
//
// Packages default to ./... (the whole module). Patterns are matched
// against import paths: ./... selects everything, a ./dir/... prefix
// selects a subtree, and a plain path selects one package. Findings
// print as file:line:col: analyzer: message, or as one JSON object per
// line with -json (non-finite witness values follow the internal/obs
// trace conventions). Suppress a finding with
//
//	//lint:ignore <analyzer> <reason>
//
// on (or directly above) the offending line, or //lint:file-ignore for
// a whole file; unused and malformed directives are themselves
// findings.
//
// Exit status: 0 clean, 1 findings, 2 operational failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit one JSON diagnostic per line instead of text")
	list := fs.Bool("list", false, "list the analyzers and the invariants they guard, then exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected, err := selectPackages(loader, pkgs, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 2
	}

	diags := analysis.Lint(selected, analysis.All())
	if *jsonOut {
		err = analysis.WriteJSON(os.Stdout, loader.Root, diags)
	} else {
		err = analysis.WriteText(os.Stdout, loader.Root, diags)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 2
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s) in %d package(s)\n", len(diags), len(selected))
		return 1
	}
	return 0
}

// selectPackages filters the loaded packages by go-style patterns
// interpreted relative to the module root.
func selectPackages(loader *analysis.Loader, pkgs []*analysis.Package, patterns []string) ([]*analysis.Package, error) {
	keep := map[string]bool{}
	for _, pat := range patterns {
		matched := false
		for _, pkg := range pkgs {
			if matchPattern(loader.ModulePath, pat, pkg.Path) {
				keep[pkg.Path] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	var out []*analysis.Package
	for _, pkg := range pkgs {
		if keep[pkg.Path] {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// matchPattern reports whether the import path matches one go-style
// pattern: "./..." everything, "./x/..." a subtree, "./x" or an import
// path one package.
func matchPattern(modPath, pat, pkgPath string) bool {
	pat = filepath.ToSlash(pat)
	// Normalize a relative pattern to an import-path pattern.
	if pat == "." || pat == "./..." {
		return true
	}
	if rest, ok := strings.CutPrefix(pat, "./"); ok {
		pat = modPath + "/" + rest
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok {
		return pkgPath == sub || strings.HasPrefix(pkgPath, sub+"/")
	}
	return pkgPath == pat
}
