package main

import "testing"

func TestMatchPattern(t *testing.T) {
	const mod = "repro"
	cases := []struct {
		pat, pkg string
		want     bool
	}{
		{"./...", "repro/internal/search", true},
		{".", "repro/cmd/repolint", true},
		{"./internal/...", "repro/internal/search", true},
		{"./internal/...", "repro/internal", true},
		{"./internal/...", "repro/cmd/autotune", false},
		{"./internal/search", "repro/internal/search", true},
		{"./internal/search", "repro/internal/search/sub", false},
		{"repro/internal/rng", "repro/internal/rng", true},
		{"repro/internal/rng", "repro/internal/rngx", false},
		{"repro/internal/...", "repro/internal/rng", true},
	}
	for _, c := range cases {
		if got := matchPattern(mod, c.pat, c.pkg); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.pat, c.pkg, got, c.want)
		}
	}
}

// TestRunCleanTree runs the real binary entry point over the module:
// the tree must be lint-clean (exit 0), -list must succeed, and an
// unmatched pattern must be an operational error (exit 2), not a silent
// no-op that would let CI "pass" while linting nothing.
func TestRunCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	if got := run([]string{"./..."}); got != 0 {
		t.Errorf("run(./...) = %d, want 0 (repository must stay lint-clean)", got)
	}
	if got := run([]string{"-list"}); got != 0 {
		t.Errorf("run(-list) = %d, want 0", got)
	}
	if got := run([]string{"./no/such/dir/..."}); got != 2 {
		t.Errorf("run(unmatched pattern) = %d, want 2", got)
	}
}
