package main

import (
	"context"

	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/forest"
	"repro/internal/rng"
	"repro/internal/search"
)

func TestBuildProblem(t *testing.T) {
	for _, name := range []string{"MM", "ATAX", "COR", "LU", "HPL", "RT"} {
		if _, err := buildProblem(name, "Sandybridge", "gnu-4.4.7", 1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := buildProblem("LU", "VAX", "gnu-4.4.7", 1); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestWriteArtifacts(t *testing.T) {
	src, err := buildProblem("LU", "Westmere", "gnu-4.4.7", 1)
	if err != nil {
		t.Fatal(err)
	}
	_, ta := core.Collect(context.Background(), src, 15, rng.New(1))
	dir := t.TempDir()

	taPath := filepath.Join(dir, "ta.csv")
	if err := writeTa(taPath, ta, src.Space()); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(taPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	loaded, err := search.LoadCSV(f, src.Space())
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(ta) {
		t.Fatalf("roundtrip rows %d vs %d", len(loaded), len(ta))
	}

	sur, err := core.FitSurrogate(ta, src.Space(), "test", forest.Params{Trees: 10}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	modelPath := filepath.Join(dir, "model.json")
	if err := writeModel(modelPath, sur); err != nil {
		t.Fatal(err)
	}
	mf, err := os.Open(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	if _, err := forest.Load(mf); err != nil {
		t.Fatalf("saved model unreadable: %v", err)
	}
}
