// Command transfer runs one cross-machine transfer experiment: collect
// T_a on the source machine, fit the surrogate, and compare RS, RSp,
// RSb, RSpf, RSbf on the target under common random numbers.
//
// Usage:
//
//	transfer -problem LU -source Westmere -target Sandybridge
//	         [-compiler gnu-4.4.7] [-threads 1] [-nmax 100]
//	         [-pool 10000] [-delta 20] [-trees 100] [-seed 2016]
package main

import (
	"context"

	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/forest"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/miniapps"
	"repro/internal/rng"
	"repro/internal/search"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/tabulate"
)

func main() {
	var (
		problem   = flag.String("problem", "LU", "MM|ATAX|COR|LU|HPL|RT")
		source    = flag.String("source", "Westmere", "source machine (provides T_a)")
		target    = flag.String("target", "Sandybridge", "target machine")
		compilerN = flag.String("compiler", "gnu-4.4.7", "compiler (kernels only)")
		threads   = flag.Int("threads", 1, "OpenMP threads")
		nmax      = flag.Int("nmax", 100, "evaluation budget")
		pool      = flag.Int("pool", 10000, "configuration pool size N")
		delta     = flag.Float64("delta", 20, "pruning cutoff quantile (percent)")
		trees     = flag.Int("trees", 100, "surrogate forest size")
		seed      = flag.Uint64("seed", 2016, "random seed")
		saveTa    = flag.String("save-ta", "", "write the collected T_a as CSV")
		saveModel = flag.String("save-model", "", "write the fitted surrogate as JSON")
	)
	flag.Parse()

	src, err := buildProblem(*problem, *source, *compilerN, *threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "transfer:", err)
		os.Exit(1)
	}
	tgt, err := buildProblem(*problem, *target, *compilerN, *threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "transfer:", err)
		os.Exit(1)
	}

	out, err := core.Run(context.Background(), src, tgt, core.Options{
		NMax: *nmax, PoolSize: *pool, DeltaPct: *delta,
		Forest: forest.Params{Trees: *trees}, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "transfer:", err)
		os.Exit(1)
	}

	fmt.Printf("transfer %s: %s -> %s\n\n", *problem, out.Source, out.Target)
	fmt.Printf("run-time correlation across machines: pearson=%.3f spearman=%.3f\n",
		out.Pearson, out.Spearman)
	fmt.Printf("surrogate-vs-target rank correlation: %.3f\n\n", out.SurrogateSpearman)

	rsBest, rsIdx, _ := out.RS.Best()
	fmt.Printf("RS baseline: best run %.4f s, found at search time %.1f s\n\n",
		rsBest.RunTime, out.RS.Records[rsIdx].Elapsed)

	tb := tabulate.NewTable("speedups over RS (paper metrics)",
		"Variant", "Best run [s]", "Prf.Imp", "Srh.Imp", "Success")
	for _, name := range []string{"RSp", "RSb", "RSpf", "RSbf"} {
		res := map[string]*search.Result{
			"RSp": out.RSp, "RSb": out.RSb, "RSpf": out.RSpf, "RSbf": out.RSbf,
		}[name]
		best, _, ok := res.Best()
		bestStr := "-"
		if ok {
			bestStr = fmt.Sprintf("%.4f", best.RunTime)
		}
		sp := out.Speedups[name]
		success := ""
		if sp.Success {
			success = "yes"
		}
		tb.AddRow(name, bestStr, tabulate.F(sp.Performance), tabulate.F(sp.SearchTime), success)
	}
	fmt.Println(tb.String())

	if *saveTa != "" {
		if err := writeTa(*saveTa, out.Ta, src.Space()); err != nil {
			fmt.Fprintln(os.Stderr, "transfer:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote T_a (%d samples) to %s\n", len(out.Ta), *saveTa)
	}
	if *saveModel != "" {
		sur, err := core.FitSurrogate(out.Ta, src.Space(), out.Source,
			forest.Params{Trees: *trees}, rng.NewNamed(*seed, "forest"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "transfer:", err)
			os.Exit(1)
		}
		if err := writeModel(*saveModel, sur); err != nil {
			fmt.Fprintln(os.Stderr, "transfer:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote surrogate (%d trees) to %s\n", sur.Forest.NumTrees(), *saveModel)
	}
}

func writeTa(path string, ta search.Dataset, spc *space.Space) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ta.SaveCSV(f, spc); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func writeModel(path string, sur *core.Surrogate) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sur.Forest.Save(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func buildProblem(name, machineN, compilerN string, threads int) (search.Problem, error) {
	m, err := machine.ByName(machineN)
	if err != nil {
		return nil, err
	}
	switch name {
	case "HPL":
		return miniapps.NewProblem(miniapps.HPL(), m), nil
	case "RT":
		return miniapps.NewProblem(miniapps.RT(), m), nil
	default:
		k, err := kernels.ByName(name)
		if err != nil {
			return nil, err
		}
		comp, err := machine.CompilerByName(compilerN)
		if err != nil {
			return nil, err
		}
		if !m.SupportsCompiler(comp) {
			return nil, fmt.Errorf("compiler %s not available on %s", compilerN, machineN)
		}
		return kernels.NewProblem(k, sim.Target{Machine: m, Compiler: comp, Threads: threads}), nil
	}
}
