// Command treeviz reproduces Figure 2: fit a decision tree to autotuning
// data collected on one machine and print it as if/else rules over the
// kernel parameters (unrolls, cache tiles, register tiles).
//
// Usage:
//
//	treeviz [-problem MM] [-machine Sandybridge] [-n 100] [-depth 3]
//	        [-forest] [-seed 2016]
package main

import (
	"context"

	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/forest"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/sim"
)

func main() {
	var (
		problem  = flag.String("problem", "MM", "kernel to sample")
		machineN = flag.String("machine", "Sandybridge", "machine providing the data")
		n        = flag.Int("n", 100, "training evaluations")
		depth    = flag.Int("depth", 3, "maximum tree depth")
		asForest = flag.Bool("forest", false, "fit a full random forest and report OOB error and importances")
		seed     = flag.Uint64("seed", 2016, "random seed")
	)
	flag.Parse()

	k, err := kernels.ByName(*problem)
	if err != nil {
		fmt.Fprintln(os.Stderr, "treeviz:", err)
		os.Exit(1)
	}
	m, err := machine.ByName(*machineN)
	if err != nil {
		fmt.Fprintln(os.Stderr, "treeviz:", err)
		os.Exit(1)
	}
	p := kernels.NewProblem(k, sim.Target{Machine: m, Compiler: machine.GNU, Threads: 1})
	_, ta := core.Collect(context.Background(), p, *n, rng.NewNamed(*seed, "treeviz"))
	X, y := ta.Encode(k.Space())

	if *asForest {
		f, err := forest.Fit(X, y, forest.Params{}, rng.New(*seed))
		if err != nil {
			fmt.Fprintln(os.Stderr, "treeviz:", err)
			os.Exit(1)
		}
		oob, _ := f.OOBError()
		fmt.Printf("random forest on %d %s evaluations from %s: %d trees, OOB RMSE %.4f s\n\n",
			len(ta), *problem, *machineN, f.NumTrees(), oob)
		fmt.Println("feature importances:")
		names := k.Space().FeatureNames()
		for i, imp := range f.Importance() {
			fmt.Printf("  %-12s %6.1f%%\n", names[i], 100*imp)
		}
		fmt.Println("\nfirst tree of the ensemble:")
		fmt.Print(f.Tree(0).String(names))
		return
	}

	tree, err := forest.FitTree(X, y, forest.TreeParams{MaxDepth: *depth, MinLeaf: 5}, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "treeviz:", err)
		os.Exit(1)
	}
	fmt.Printf("decision tree on %d %s evaluations from %s (leaf values: mean run time, s)\n\n",
		len(ta), *problem, *machineN)
	fmt.Print(tree.String(k.Space().FeatureNames()))
}
