package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/search"
	"repro/internal/service"
	"repro/internal/sim"
)

// TestMain lets the test binary impersonate autotuned: a child process
// started with AUTOTUNED_E2E_MAIN=1 runs the real main path, so the e2e
// tests exercise flag parsing, HTTP serving, signal handling, and the
// SIGKILL-restart-resume loop without a separate build step.
func TestMain(m *testing.M) {
	if os.Getenv("AUTOTUNED_E2E_MAIN") == "1" {
		os.Exit(run())
	}
	os.Exit(m.Run())
}

// daemon is one running autotuned child process.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://host:port
	log  *os.File
	exit chan error
}

// logDir returns where daemon stderr logs go: AUTOTUNED_E2E_LOGDIR if
// set (CI uploads it as a failure-only artifact), else the test's temp
// dir.
func logDir(t *testing.T) string {
	if d := os.Getenv("AUTOTUNED_E2E_LOGDIR"); d != "" {
		if err := os.MkdirAll(d, 0o755); err == nil {
			return d
		}
	}
	return t.TempDir()
}

// startDaemon launches the daemon on :0 and scrapes the bound address.
func startDaemon(t *testing.T, name string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(os.Args[0], append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Env = append(os.Environ(), "AUTOTUNED_E2E_MAIN=1")
	logPath := filepath.Join(logDir(t), fmt.Sprintf("%s-%s.log", t.Name(), name))
	lf, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = lf
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, log: lf, exit: make(chan error, 1)}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		<-d.exit
		_ = lf.Close()
	})

	sc := bufio.NewScanner(stdout)
	lineCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			select {
			case lineCh <- line:
			default:
			}
			// Drain the rest so the child never blocks on stdout.
		}
	}()
	// Closed after the send so every later receive (sigterm, sigkill,
	// cleanup) returns immediately instead of deadlocking on a second
	// read of the one buffered result.
	go func() { d.exit <- cmd.Wait(); close(d.exit) }()
	select {
	case line := <-lineCh:
		const prefix = "listening on http://"
		if !strings.HasPrefix(line, prefix) {
			t.Fatalf("daemon printed %q, want %q", line, prefix+"...")
		}
		d.base = "http://" + strings.TrimPrefix(line, prefix)
	case err := <-d.exit:
		t.Fatalf("daemon exited before listening: %v (log: %s)", err, logPath)
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never printed its address (log: %s)", logPath)
	}
	return d
}

// sigkill kills the daemon dead — no drain, no checkpoint flush beyond
// what the journal already made durable.
func (d *daemon) sigkill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-d.exit
}

// sigterm asks for a graceful shutdown and waits for a clean exit.
func (d *daemon) sigterm(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-d.exit:
		if err != nil {
			t.Fatalf("daemon exited uncleanly: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never exited after SIGTERM")
	}
}

func exitCode(t *testing.T, args ...string) int {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "AUTOTUNED_E2E_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	t.Fatalf("running %v: %v\n%s", args, err, out)
	return -1
}

func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

// waitSession polls until the predicate holds.
func waitSession(t *testing.T, base, id string, pred func(service.Status) bool, what string) service.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st service.Status
		code := doJSON(t, "GET", base+"/sessions/"+id, nil, &st)
		if code == http.StatusOK {
			if pred(st) {
				return st
			}
			if st.State == service.StateFailed {
				t.Fatalf("session %s failed: %s", id, st.Error)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("session %s never reached %s", id, what)
	return service.Status{}
}

func waitDone(t *testing.T, base, id string) service.Status {
	t.Helper()
	return waitSession(t, base, id, func(st service.Status) bool {
		return st.State == service.StateDone
	}, "done")
}

// e2eRequest is the shared faulted ATAX request the e2e tests tune.
func e2eRequest() service.Request {
	return service.Request{
		Kernel: "ATAX", Machine: "Sandybridge",
		Algorithm: "rs", Budget: 30, Seed: 17,
		Faults: 0.3, Timeout: 50,
	}
}

// controlRecords computes the reference trajectory for e2eRequest with
// a direct in-process run: the daemon must match it bit for bit.
func controlRecords(t *testing.T, req service.Request) []search.Record {
	t.Helper()
	m, err := machine.ByName(req.Machine)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := machine.CompilerByName("gnu-4.4.7")
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernels.ByName(req.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	p := kernels.NewProblem(k, sim.Target{Machine: m, Compiler: comp, Threads: 1})
	inj := faults.Wrap(p, faults.Profile(req.Machine).ScaledTo(req.Faults), req.Seed)
	rp := search.NewResilient(inj, search.ResilientOptions{Retries: 2, Timeout: req.Timeout})
	return search.RS(context.Background(), rp, req.Budget, rng.New(req.Seed)).Records
}

// recordsOf converts a daemon result for comparison against a control.
func recordsOf(t *testing.T, res service.ResultJSON) []search.Record {
	t.Helper()
	out := make([]search.Record, 0, len(res.Records))
	for _, rj := range res.Records {
		st, err := search.ParseStatus(rj.Status)
		if err != nil {
			t.Fatal(err)
		}
		rec := search.Record{
			Config: rj.Config, Cost: rj.Cost, Elapsed: rj.Elapsed,
			Status: st, Retries: rj.Retries,
		}
		if rj.Run != nil {
			rec.RunTime = *rj.Run
		} else {
			rec.RunTime = math.Inf(1)
		}
		out = append(out, rec)
	}
	return out
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                               // -root missing
		{"-root", "x", "-sessions", "0"}, // no runners
		{"-root", "x", "-queue", "0"},    // no queue
		{"-root", "x", "-broker-workers", "-1"},
		{"-root", "x", "stray-arg"},
	}
	for _, args := range cases {
		if code := exitCode(t, args...); code != exitUsage {
			t.Errorf("autotuned %v: exit %d, want %d", args, code, exitUsage)
		}
	}
}

// TestSubmitPollResubmit is the cache half of the e2e acceptance
// criterion: a completed session's identical resubmission is served
// entirely from the evaluation cache — zero new evaluations — and
// returns a bit-identical result.
func TestSubmitPollResubmit(t *testing.T) {
	root := t.TempDir()
	d := startDaemon(t, "daemon", "-root", root)
	req := e2eRequest()

	var st service.Status
	if code := doJSON(t, "POST", d.base+"/sessions", req, &st); code != http.StatusCreated {
		t.Fatalf("submit: status %d", code)
	}
	fin := waitDone(t, d.base, st.ID)
	if fin.CacheMisses != req.Budget {
		t.Fatalf("cold session ran %d real evaluations, want %d", fin.CacheMisses, req.Budget)
	}
	var res1 service.ResultJSON
	if code := doJSON(t, "GET", d.base+"/sessions/"+st.ID+"/result", nil, &res1); code != http.StatusOK {
		t.Fatalf("result: status %d", code)
	}
	if want := controlRecords(t, req); !reflect.DeepEqual(want, recordsOf(t, res1)) {
		t.Fatal("daemon result diverged from the direct in-process control run")
	}

	var st2 service.Status
	if code := doJSON(t, "POST", d.base+"/sessions", req, &st2); code != http.StatusCreated {
		t.Fatalf("resubmit: status %d", code)
	}
	fin2 := waitDone(t, d.base, st2.ID)
	if fin2.CacheMisses != 0 {
		t.Fatalf("resubmission ran %d real evaluations, want 0 (cache)", fin2.CacheMisses)
	}
	if fin2.CacheHits != req.Budget {
		t.Fatalf("resubmission hit the cache %d times, want %d", fin2.CacheHits, req.Budget)
	}
	var res2 service.ResultJSON
	doJSON(t, "GET", d.base+"/sessions/"+st2.ID+"/result", nil, &res2)
	res2.ID = res1.ID
	if !reflect.DeepEqual(res1, res2) {
		t.Fatal("cache-served resubmission diverged from the original run")
	}

	d.sigterm(t)
}

// TestSIGKILLRestartResume is the crash half of the e2e acceptance
// criterion: a daemon killed with SIGKILL mid-session restarts, resumes
// the session from its journal, and finishes with a result
// bit-identical to an uninterrupted run.
func TestSIGKILLRestartResume(t *testing.T) {
	root := t.TempDir()
	req := e2eRequest()
	req.Budget = 60
	req.ThrottleMS = 15 // wall-time pacing only: keeps the kill mid-session

	d1 := startDaemon(t, "first", "-root", root)
	var st service.Status
	if code := doJSON(t, "POST", d1.base+"/sessions", req, &st); code != http.StatusCreated {
		t.Fatalf("submit: status %d", code)
	}
	waitSession(t, d1.base, st.ID, func(s service.Status) bool {
		return s.Evaluations >= 5
	}, ">=5 evaluations")
	d1.sigkill(t)

	d2 := startDaemon(t, "second", "-root", root)
	fin := waitDone(t, d2.base, st.ID)
	if !fin.Resumed {
		t.Fatal("restarted session did not report Resumed")
	}
	if fin.Evaluations != req.Budget {
		t.Fatalf("resumed session holds %d records, want %d", fin.Evaluations, req.Budget)
	}
	// The journaled prefix was not re-evaluated: the resume only ran the
	// remainder for real.
	if fin.CacheHits+fin.CacheMisses >= req.Budget {
		t.Fatalf("resume re-ran the whole budget (%d hits + %d misses)", fin.CacheHits, fin.CacheMisses)
	}

	var res service.ResultJSON
	if code := doJSON(t, "GET", d2.base+"/sessions/"+st.ID+"/result", nil, &res); code != http.StatusOK {
		t.Fatalf("result: status %d", code)
	}
	control := req
	control.ThrottleMS = 0
	if want := controlRecords(t, control); !reflect.DeepEqual(want, recordsOf(t, res)) {
		t.Fatal("SIGKILL-resumed result diverged from an uninterrupted run")
	}
	d2.sigterm(t)
}

// TestCachePersistsAcrossRestarts: -cache FILE exports on clean
// shutdown and imports on start, so even a daemon with a fresh root
// serves known work from memory.
func TestCachePersistsAcrossRestarts(t *testing.T) {
	cachePath := filepath.Join(t.TempDir(), "cache.json")
	req := e2eRequest()

	d1 := startDaemon(t, "first", "-root", t.TempDir(), "-cache", cachePath)
	var st service.Status
	if code := doJSON(t, "POST", d1.base+"/sessions", req, &st); code != http.StatusCreated {
		t.Fatalf("submit: status %d", code)
	}
	waitDone(t, d1.base, st.ID)
	d1.sigterm(t)
	if _, err := os.Stat(cachePath); err != nil {
		t.Fatalf("clean shutdown left no cache artifact: %v", err)
	}

	// Fresh root, same cache file: the resubmission runs free.
	d2 := startDaemon(t, "second", "-root", t.TempDir(), "-cache", cachePath)
	var st2 service.Status
	if code := doJSON(t, "POST", d2.base+"/sessions", req, &st2); code != http.StatusCreated {
		t.Fatalf("submit: status %d", code)
	}
	fin := waitDone(t, d2.base, st2.ID)
	if fin.CacheMisses != 0 {
		t.Fatalf("imported-cache session ran %d real evaluations, want 0", fin.CacheMisses)
	}
	d2.sigterm(t)
}
