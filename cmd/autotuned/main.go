// Command autotuned is the autotuning service daemon: a long-running,
// zero-dependency HTTP server hosting many concurrent tuning sessions
// over one shared evaluation cache.
//
// Usage:
//
//	autotuned -root DIR [-addr 127.0.0.1:8080] [-sessions 2]
//	          [-queue 64] [-broker] [-broker-workers N]
//	          [-trace-sessions] [-cache FILE] [-metrics-addr ADDR]
//
// The API (see internal/service):
//
//	POST   /sessions        submit {kernel, machine, algorithm, budget, seed, ...}
//	GET    /sessions        list sessions
//	GET    /sessions/{id}   poll progress (state, evaluations, cache hits/misses)
//	GET    /sessions/{id}/best    best configuration once done
//	GET    /sessions/{id}/result  the full record trajectory once done
//	DELETE /sessions/{id}   cancel
//	GET    /cache           export the evaluation cache artifact (JSON)
//	PUT    /cache           import an artifact (validated, first write wins)
//	GET    /cache/stats     cache size and hit/miss totals
//	GET    /metrics         metrics snapshot; GET /healthz liveness
//
// Every session journals each evaluation durably before the search
// observes it (internal/journal), so a daemon killed with SIGKILL
// restarts, re-ingests the journals into the cache, and resumes every
// in-flight session bit-identically to an uninterrupted run. -cache
// FILE additionally imports a cache artifact at startup (if the file
// exists) and exports the cache there on clean shutdown.
//
// -addr supports ":0"; the bound address is printed on stdout as
// "listening on http://HOST:PORT" so scripts and tests can scrape it.
// SIGINT/SIGTERM shut down gracefully: in-flight sessions drain their
// current evaluation, checkpoint, and are re-queued on the next start.
//
// Exit codes: 0 clean shutdown, 1 runtime failure, 2 bad usage.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

const (
	exitOK      = 0
	exitError   = 1
	exitUsage   = 2
	shutdownMax = 10 * time.Second
)

func warnf(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "autotuned: "+format+"\n", a...)
}

func main() { os.Exit(run()) }

func run() int {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "HTTP listen address (\":0\" picks a free port)")
		root        = flag.String("root", "", "state directory for sessions and journals (required)")
		sessions    = flag.Int("sessions", 2, "max concurrently running sessions")
		queue       = flag.Int("queue", 64, "max sessions waiting for a runner slot")
		brokerOn    = flag.Bool("broker", false, "route evaluations through the in-process fault-tolerant broker")
		brokerW     = flag.Int("broker-workers", 0, "broker worker shards (0 = broker default; implies -broker)")
		traceSess   = flag.Bool("trace-sessions", false, "write a JSONL event trace per session (<session>/trace.jsonl)")
		cacheFile   = flag.String("cache", "", "cache artifact FILE: imported at startup if present, exported on clean shutdown")
		metricsAddr = flag.String("metrics-addr", "", "also serve /metrics and /healthz on a separate ADDR (obs.ServeMetrics)")
	)
	flag.Parse()

	if *root == "" {
		warnf("-root is required")
		return exitUsage
	}
	if *sessions < 1 {
		warnf("-sessions must be >= 1, got %d", *sessions)
		return exitUsage
	}
	if *queue < 1 {
		warnf("-queue must be >= 1, got %d", *queue)
		return exitUsage
	}
	if *brokerW < 0 {
		warnf("-broker-workers must be >= 0, got %d", *brokerW)
		return exitUsage
	}
	if flag.NArg() > 0 {
		warnf("unexpected arguments: %v", flag.Args())
		return exitUsage
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	reg := obs.NewRegistry()
	srv, err := service.New(ctx, service.Options{
		Root:          *root,
		MaxSessions:   *sessions,
		QueueDepth:    *queue,
		Broker:        *brokerOn || *brokerW > 0,
		BrokerWorkers: *brokerW,
		TraceSessions: *traceSess,
		Registry:      reg,
		Logf:          warnf,
	})
	if err != nil {
		warnf("%v", err)
		return exitError
	}

	if *cacheFile != "" {
		if f, err := os.Open(*cacheFile); err == nil {
			stats, ierr := srv.Cache().Import(f)
			if cerr := f.Close(); ierr == nil {
				ierr = cerr
			}
			if ierr != nil {
				warnf("cache import %s: %v", *cacheFile, ierr)
				srv.Close()
				return exitError
			}
			warnf("cache: imported %d entries from %s (%d already held)", stats.Added, *cacheFile, stats.Skipped)
		} else if !errors.Is(err, os.ErrNotExist) {
			warnf("cache import %s: %v", *cacheFile, err)
			srv.Close()
			return exitError
		}
	}

	if *metricsAddr != "" {
		ms, merr := obs.ServeMetrics(*metricsAddr, reg)
		if merr != nil {
			warnf("metrics-addr: %v", merr)
			srv.Close()
			return exitError
		}
		warnf("metrics at http://%s/metrics", ms.Addr())
		defer func() {
			if cerr := ms.Close(); cerr != nil {
				warnf("metrics server: %v", cerr)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		warnf("%v", err)
		srv.Close()
		return exitError
	}
	hs := &http.Server{Handler: srv.Handler()}
	// Stdout, not stderr: scripts and the e2e tests scrape this line.
	fmt.Printf("listening on http://%s\n", ln.Addr())
	warnf("root %s, %d runners", *root, *sessions)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	code := exitOK
	select {
	case <-ctx.Done():
		warnf("signal received, shutting down")
	case err := <-serveErr:
		warnf("http server: %v", err)
		code = exitError
	}

	sctx, cancel := context.WithTimeout(context.Background(), shutdownMax)
	if err := hs.Shutdown(sctx); err != nil {
		warnf("http shutdown: %v", err)
		_ = hs.Close()
	}
	cancel()
	// Stop the runners (the signal context already interrupted running
	// searches; they checkpoint and return) and drain the pool.
	srv.Close()

	if *cacheFile != "" {
		if err := exportCache(srv, *cacheFile); err != nil {
			warnf("cache export %s: %v", *cacheFile, err)
			code = exitError
		} else {
			warnf("cache: exported %d entries to %s", srv.Cache().Len(), *cacheFile)
		}
	}
	warnf("bye")
	return code
}

// exportCache writes the cache artifact atomically: temp file, fsync,
// rename.
func exportCache(srv *service.Server, path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".autotuned-cache-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	werr := srv.Cache().Export(tmp)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(name)
		return werr
	}
	if err := os.Rename(name, path); err != nil {
		_ = os.Remove(name)
		return err
	}
	return nil
}
