// Command benchjson converts `go test -bench` output into a structured
// JSON report. It reads benchmark output on stdin and writes one JSON
// document to the file named by -o (default BENCH.json):
//
//	go test -run '^$' -bench 'BenchmarkBroker' -benchtime 2x ./... |
//	    go run ./cmd/benchjson -o BENCH_PR7.json
//
// Each benchmark line becomes an entry with its name, iteration count,
// ns/op, and any extra metrics the benchmark reported via
// b.ReportMetric (e.g. pearson, speedup). Lines that are not benchmark
// results (pass/fail markers, package headers) are passed through to
// stderr so a piped run still shows its progress.
//
// The JSON is stable: entries appear in input order and keys are
// emitted sorted, so two runs of the same benchmarks diff cleanly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark result line.
type Entry struct {
	// Name is the full benchmark name including sub-benchmarks,
	// with the -N GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline ns/op figure.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics carries every additional unit the benchmark reported
	// (bytes/op, allocs/op, and custom b.ReportMetric units).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	// Context lines captured from the benchmark header (goos, goarch,
	// pkg, cpu), keyed by field name.
	Context map[string]string `json:"context,omitempty"`
	// Benchmarks holds the results in input order.
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH.json", "output JSON file")
	flag.Parse()

	rep := Report{Context: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			if e, ok := parseBench(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, e)
				continue
			}
		case hasContextPrefix(line):
			k, v, _ := strings.Cut(line, ":")
			rep.Context[k] = strings.TrimSpace(v)
			continue
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

func hasContextPrefix(line string) bool {
	for _, p := range []string{"goos:", "goarch:", "pkg:", "cpu:"} {
		if strings.HasPrefix(line, p) {
			return true
		}
	}
	return false
}

// parseBench parses one result line of the form
//
//	BenchmarkName-8   123   4567 ns/op   89 B/op   2 allocs/op   0.93 pearson
//
// into an Entry. Fields after the iteration count come in value/unit
// pairs.
func parseBench(line string) (Entry, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Entry{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -N GOMAXPROCS suffix, keeping sub-benchmark slashes.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Entry{}, false
		}
		if f[i+1] == "ns/op" {
			e.NsPerOp = v
		} else {
			e.Metrics[f[i+1]] = v
		}
	}
	if len(e.Metrics) == 0 {
		e.Metrics = nil
	}
	return e, true
}
