package main

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/broker/remote"
	"repro/internal/journal/crashtest"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/search"
	"repro/internal/sim"
)

// TestMain lets the test binary impersonate brokerd: a child process
// started with BROKERD_E2E_MAIN=1 runs the real main path, so the e2e
// tests exercise flag parsing, the resolver, dial/reconnect, and signal
// handling without a separate build step.
func TestMain(m *testing.M) {
	if os.Getenv("BROKERD_E2E_MAIN") == "1" {
		os.Exit(run())
	}
	os.Exit(m.Run())
}

// brokerdCmd re-executes the test binary as brokerd.
func brokerdCmd(args ...string) *exec.Cmd {
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "BROKERD_E2E_MAIN=1")
	return cmd
}

func exitCode(t *testing.T, cmd *exec.Cmd) int {
	t.Helper()
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	t.Fatalf("running %v: %v\n%s", cmd.Args, err, out)
	return -1
}

// TestUsageErrors pins the flag-validation contract: every bad
// invocation exits 2 before touching the network.
func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                                       // -connect missing
		{"-connect", "x", "-faults", "1.5"},      // rate out of range
		{"-connect", "x", "-faults", "-0.1"},     // negative rate
		{"-connect", "x", "-machine", "NoSuch"},  // unknown machine
		{"-connect", "x", "-compiler", "NoSuch"}, // unknown compiler
	}
	for _, args := range cases {
		if code := exitCode(t, brokerdCmd(args...)); code != exitUsage {
			t.Errorf("brokerd %v: exit %d, want %d", args, code, exitUsage)
		}
	}
}

// lu is the inline reference problem: the same plain LU kernel stack a
// brokerd worker builds for the default flags (no faults, no budgets).
func lu(t *testing.T) search.Problem {
	t.Helper()
	m, err := machine.ByName("Sandybridge")
	if err != nil {
		t.Fatal(err)
	}
	comp, err := machine.CompilerByName("gnu-4.4.7")
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernels.ByName("LU")
	if err != nil {
		t.Fatal(err)
	}
	return kernels.NewProblem(k, sim.Target{Machine: m, Compiler: comp, Threads: 1})
}

// servingPool is the driver side of the e2e tests: an external-mode
// broker whose pool listens on a unix socket in dir.
func servingPool(t *testing.T, dir string, retries int) (*broker.Broker, *remote.Pool, string) {
	t.Helper()
	addr := "unix:" + filepath.Join(dir, "w.sock")
	b := broker.New(broker.Options{
		External: true,
		Retries:  retries,
		Backoff:  100 * time.Microsecond,
	})
	pool := remote.NewPool(b, remote.PoolOptions{})
	ln, err := remote.Listen(addr)
	if err != nil {
		pool.Close()
		b.Close()
		t.Fatal(err)
	}
	pool.Serve(ln)
	t.Cleanup(func() { pool.Close(); b.Close() })
	return b, pool, addr
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServesEvaluations runs a full search whose every evaluation is
// served by a brokerd child process over a unix socket, and asserts the
// result is bit-identical to the inline run.
func TestServesEvaluations(t *testing.T) {
	const seed, nmax = 71, 30
	ref := search.RS(context.Background(), lu(t), nmax, rng.New(seed))

	b, pool, addr := servingPool(t, t.TempDir(), 100)
	cmd := brokerdCmd("-connect", addr, "-label", "e2e-w1")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()
	waitFor(t, "worker session", func() bool { return pool.Sessions() == 1 })

	reg := obs.NewRegistry()
	ctx := obs.WithTracer(context.Background(), obs.New(obs.NewMetricsSink(reg)))
	res := search.RS(ctx, b.Problem(lu(t)), nmax, rng.New(seed))

	if leases := reg.Counter(obs.MetricRemoteLeases).Value(); leases == 0 {
		t.Fatal("no remote leases: evaluations never reached the worker")
	}
	// Every evaluation must have been served by the worker process, not
	// degraded inline after exhausted retries — a resolver that rejects
	// the driver's wire names would pass the bit-identity check (the
	// problem is stateless) while silently serving nothing.
	if deg := reg.Counter(obs.MetricDegraded).Value(); deg != 0 {
		t.Fatalf("%d evaluations degraded inline; the worker served nothing", deg)
	}
	if err := crashtest.Compare(ref, res); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerKilledAndReplaced SIGKILLs the worker process mid-campaign
// and starts a replacement: the pool's failure detector reclaims the
// dead session's leases, the broker re-dispatches, and the second
// search still matches inline. The problem is stateless, so a task that
// died with the worker replays without divergence.
func TestWorkerKilledAndReplaced(t *testing.T) {
	const seed, nmax = 83, 25
	ref := search.RS(context.Background(), lu(t), nmax, rng.New(seed))

	dir := t.TempDir()
	b, pool, addr := servingPool(t, dir, 100)

	w1 := brokerdCmd("-connect", addr, "-label", "e2e-kill")
	if err := w1.Start(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first worker session", func() bool { return pool.Sessions() == 1 })

	// First search served by w1 proves it is doing real work, then the
	// SIGKILL leaves the pool with a corpse mid-heartbeat.
	reg := obs.NewRegistry()
	ctx := obs.WithTracer(context.Background(), obs.New(obs.NewMetricsSink(reg)))
	if err := crashtest.Compare(ref, search.RS(ctx, b.Problem(lu(t)), nmax, rng.New(seed))); err != nil {
		t.Fatalf("before kill: %v", err)
	}
	if leases := reg.Counter(obs.MetricRemoteLeases).Value(); leases == 0 {
		t.Fatal("no remote leases before the kill")
	}
	if err := w1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = w1.Wait()

	// A replacement worker connects; the failure detector buries the
	// dead session and the next search flows to the new one.
	w2 := brokerdCmd("-connect", addr, "-label", "e2e-heir")
	if err := w2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = w2.Process.Kill()
		_ = w2.Wait()
	}()
	waitFor(t, "replacement session", func() bool { return pool.Sessions() >= 1 })

	res := search.RS(context.Background(), b.Problem(lu(t)), nmax, rng.New(seed))
	if err := crashtest.Compare(ref, res); err != nil {
		t.Fatalf("after kill+replace: %v", err)
	}
}

// TestGracefulShutdownOnSignal starts a connected worker, sends
// SIGTERM, and expects a clean exit 0: workers treat operator signals
// as normal shutdown, not failure.
func TestGracefulShutdownOnSignal(t *testing.T) {
	_, pool, addr := servingPool(t, t.TempDir(), -1)
	cmd := brokerdCmd("-connect", addr, "-label", "e2e-term")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "worker session", func() bool { return pool.Sessions() == 1 })
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	if err != nil {
		t.Fatalf("SIGTERM shutdown: %v (want exit 0)", err)
	}
}

// TestResolverContract pins the resolver used by the worker: known
// names build cached instances, unknown names error, and the cache
// returns the same instance for re-dispatched tasks (the stateful
// fault injector must not be rebuilt mid-run).
func TestResolverContract(t *testing.T) {
	resolve, err := newResolver("Sandybridge", "gnu-4.4.7", 1, "", 0.3, 2, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	const luWire = "LU@Sandybridge/gnu-4.4.7/t1"
	p1, err := resolve(luWire)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := resolve(luWire)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("resolver rebuilt LU: re-dispatch would reset the fault injector")
	}
	for _, name := range []string{"HPL@Sandybridge", "RT@Sandybridge", "MM@Sandybridge/gnu-4.4.7/t1", "LU"} {
		if _, err := resolve(name); err != nil {
			t.Errorf("resolve(%s): %v", name, err)
		}
	}
	if _, err := resolve("NoSuchKernel@Sandybridge/gnu-4.4.7/t1"); err == nil {
		t.Error("resolve(NoSuchKernel@...): want error")
	}
	// A qualified name for a different target must be refused, not
	// silently computed on the wrong simulated machine.
	if _, err := resolve("LU@Power7/gnu-4.4.7/t1"); err == nil {
		t.Error("resolve(LU@Power7/...): want target-mismatch error")
	}
	if _, err = newResolver("NoSuch", "gnu-4.4.7", 1, "", 0, 2, 0, 7); err == nil {
		t.Error("newResolver with unknown machine: want error")
	}
}
