// Command brokerd is a remote evaluation worker: it connects to a
// driver (cmd/autotune or cmd/experiments started with -broker-remote
// -workers-addr ADDR), receives broker tasks over the wire, evaluates
// them locally, and streams the results back under a heartbeat.
//
// Usage:
//
//	brokerd -connect unix:/tmp/tune.sock [-label w1] [-heartbeat 25ms]
//	        [-machine Sandybridge] [-compiler gnu-4.4.7] [-threads 1]
//	        [-faults 0.3] [-retries 2] [-timeout 30] [-seed 42]
//	        [-annotation FILE] [-metrics] [-trace FILE] [-flight FILE]
//	        [-metrics-addr ADDR]
//
// The worker rebuilds the driver's evaluation stack locally from the
// problem name each task carries: the simulated kernel or mini-app,
// plus the fault injector and resilient retry/timeout budgets when
// -faults/-timeout are set. For remote results to be bit-identical to
// inline ones the evaluation-stack flags (-machine, -compiler,
// -threads, -faults, -retries, -timeout, -seed) must match the
// driver's; the driver's lease reclaim re-dispatches any divergence-
// inducing mismatch as ordinary work, so a mismatch shows up as wrong
// numbers, not a hang — keep the flags in lockstep.
//
// brokerd reconnects with capped exponential backoff when the driver
// restarts or the network drops, and exits cleanly when the driver
// says goodbye. -metrics prints the worker's local telemetry snapshot
// (evaluations by status, faults, retries) on exit; worker-side
// telemetry is local to this process, not forwarded to the driver.
// -trace appends the worker's JSONL trace — including worker-eval
// spans keyed by the trace id each task carries on the wire — so
// tracestat can stitch it with the driver's trace into one causal
// timeline. -flight keeps a fixed-size in-memory flight recorder and
// dumps it to FILE when the worker exits abnormally. -metrics-addr
// serves the live snapshot over HTTP (/metrics, /healthz).
//
// Exit codes: 0 clean shutdown (driver said bye, or SIGINT/SIGTERM),
// 1 runtime failure (reconnect budget exhausted), 2 bad usage.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"repro/internal/annotate"
	"repro/internal/broker/remote"
	"repro/internal/faults"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/miniapps"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/sim"
)

const (
	exitOK    = 0
	exitError = 1
	exitUsage = 2
)

func warnf(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "brokerd: "+format+"\n", a...)
}

func main() { os.Exit(run()) }

func run() int {
	var (
		connect     = flag.String("connect", "", "driver address to connect to: unix:/path or [tcp:]host:port (required)")
		label       = flag.String("label", "", "worker name in telemetry and driver logs (default: brokerd-<pid>)")
		heartbeat   = flag.Duration("heartbeat", 0, "heartbeat period (0 = transport default)")
		machineN    = flag.String("machine", "Sandybridge", "target machine (must match the driver)")
		compilerN   = flag.String("compiler", "gnu-4.4.7", "compiler (must match the driver)")
		threads     = flag.Int("threads", 1, "OpenMP threads (must match the driver)")
		annotation  = flag.String("annotation", "", "path to an annotated kernel file, served under its parsed name")
		faultRate   = flag.Float64("faults", 0, "total injected failure rate in [0,1) (must match the driver)")
		retries     = flag.Int("retries", 2, "max retries per transient evaluation failure (must match the driver)")
		timeout     = flag.Float64("timeout", 0, "per-evaluation run-time cap in seconds (must match the driver)")
		seed        = flag.Uint64("seed", 42, "random seed for the fault injector (must match the driver)")
		metrics     = flag.Bool("metrics", false, "print the local telemetry snapshot on exit")
		traceFile   = flag.String("trace", "", "write worker-side JSONL trace to FILE (spans keyed by the driver's trace id; tracestat stitches it with the driver's trace)")
		flightFile  = flag.String("flight", "", "dump the in-memory flight recorder (last events, spans included) to FILE on abnormal exit")
		metricsAddr = flag.String("metrics-addr", "", "serve the live telemetry snapshot over HTTP on ADDR (/metrics and /healthz)")
	)
	flag.Parse()

	if *connect == "" {
		warnf("-connect is required (the driver's -workers-addr)")
		return exitUsage
	}
	if *faultRate < 0 || *faultRate >= 1 {
		warnf("-faults must be in [0,1), got %v", *faultRate)
		return exitUsage
	}
	if *label == "" {
		*label = fmt.Sprintf("brokerd-%d", os.Getpid())
	}

	resolve, err := newResolver(*machineN, *compilerN, *threads, *annotation,
		*faultRate, *retries, *timeout, *seed)
	if err != nil {
		warnf("%v", err)
		return exitUsage
	}

	// Worker-side telemetry: the resilient layer's fault/retry/censor
	// events and the worker-eval spans land here, local to this process
	// (DESIGN.md §9/§10). Sinks compose: metrics aggregation, the JSONL
	// trace tracestat stitches with the driver's by trace id, and the
	// flight recorder dumped on abnormal exit.
	var sinks []obs.Sink
	var reg *obs.Registry
	if *metrics || *metricsAddr != "" {
		reg = obs.NewRegistry()
		sinks = append(sinks, obs.NewMetricsSink(reg))
	}
	var jsonl *obs.JSONLSink
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			warnf("-trace: %v", err)
			return exitError
		}
		jsonl = obs.NewJSONLSink(f)
		sinks = append(sinks, jsonl)
	}
	var rec *obs.Recorder
	if *flightFile != "" {
		rec = obs.NewRecorder(0)
		sinks = append(sinks, rec)
	}
	var tracer *obs.Tracer
	if len(sinks) > 0 {
		tracer = obs.New(obs.Multi(sinks...))
	}

	if *metricsAddr != "" {
		srv, err := obs.ServeMetrics(*metricsAddr, reg)
		if err != nil {
			warnf("-metrics-addr: %v", err)
			return exitError
		}
		warnf("metrics at http://%s/metrics", srv.Addr())
		// Best-effort teardown: the process is exiting either way.
		defer func() { _ = srv.Close() }()
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	w := &remote.Worker{
		Resolve:   resolve,
		Label:     *label,
		BeatEvery: *heartbeat,
		Tracer:    tracer,
	}
	warnf("connecting to %s as %s", *connect, *label)
	err = w.Run(ctx, func(ctx context.Context) (net.Conn, error) {
		return remote.Dial(ctx, *connect)
	})
	if jsonl != nil {
		if ferr := jsonl.Close(); ferr != nil {
			warnf("-trace: %v", ferr)
		}
	}
	if reg != nil && *metrics {
		fmt.Print(reg.Snapshot())
	}
	switch {
	case err == nil:
		warnf("driver said goodbye, shutting down")
		return exitOK
	case errors.Is(err, context.Canceled):
		warnf("interrupted, shutting down")
		return exitOK
	default:
		// Abnormal exit: persist the flight recorder so the last events
		// before the failure survive the process.
		if rec != nil {
			if derr := rec.Dump(*flightFile); derr != nil {
				warnf("-flight: %v", derr)
			} else {
				warnf("flight recording dumped to %s", *flightFile)
			}
		}
		warnf("%v", err)
		return exitError
	}
}

// newResolver builds the wire-name -> problem resolver: every problem
// the driver can tune (SPAPT kernels, mini-apps, one optional annotated
// kernel), each wrapped in the same fault-injection and resilience
// stack the driver would use inline. Instances are cached per name so a
// re-dispatched task evaluates against the same injector state, and the
// cache is goroutine-safe because the worker evaluates tasks on
// separate goroutines.
func newResolver(machineN, compilerN string, threads int, annotation string,
	faultRate float64, retries int, timeout float64, seed uint64) (remote.Resolver, error) {

	m, err := machine.ByName(machineN)
	if err != nil {
		return nil, err
	}
	comp, err := machine.CompilerByName(compilerN)
	if err != nil {
		return nil, err
	}
	var annotated *kernels.Kernel
	if annotation != "" {
		text, err := os.ReadFile(annotation)
		if err != nil {
			return nil, err
		}
		k, err := annotate.Parse(string(text))
		if err != nil {
			return nil, err
		}
		annotated = k
	}

	target := sim.Target{Machine: m, Compiler: comp, Threads: threads}
	build := func(name string) (search.Problem, error) {
		// Wire names are qualified — "LU@Sandybridge/gnu-4.4.7/t1",
		// "HPL@Sandybridge" — so a worker configured for a different
		// target refuses the task instead of silently computing on the
		// wrong simulated machine.
		base, tgt := name, ""
		if i := strings.IndexByte(name, '@'); i >= 0 {
			base, tgt = name[:i], name[i+1:]
		}
		var p search.Problem
		switch {
		case annotated != nil && base == annotated.Name:
			p = kernels.NewProblem(annotated, target)
		case base == "HPL":
			p = miniapps.NewProblem(miniapps.HPL(), m)
		case base == "RT":
			p = miniapps.NewProblem(miniapps.RT(), m)
		default:
			k, err := kernels.ByName(base)
			if err != nil {
				return nil, fmt.Errorf("unknown problem %q from driver", name)
			}
			if !m.SupportsCompiler(comp) {
				return nil, fmt.Errorf("compiler %s not available on %s", compilerN, machineN)
			}
			p = kernels.NewProblem(k, target)
		}
		if tgt != "" && p.Name() != name {
			return nil, fmt.Errorf("target mismatch: driver tunes %s, this worker builds %s (align -machine/-compiler/-threads)", name, p.Name())
		}
		// Same stack shape as cmd/autotune: injector (stateful, hence
		// the cache) under the resilient retry/timeout budgets.
		if faultRate > 0 || timeout > 0 {
			fp := search.Fallible(p)
			if faultRate > 0 {
				fp = faults.Wrap(p, faults.Profile(machineN).ScaledTo(faultRate), seed)
			}
			p = search.NewResilient(fp, search.ResilientOptions{Retries: retries, Timeout: timeout})
		}
		return p, nil
	}

	var mu sync.Mutex
	cache := map[string]search.Problem{}
	return func(name string) (search.Problem, error) {
		mu.Lock()
		defer mu.Unlock()
		if p, ok := cache[name]; ok {
			return p, nil
		}
		p, err := build(name)
		if err != nil {
			return nil, err
		}
		cache[name] = p
		return p, nil
	}, nil
}
