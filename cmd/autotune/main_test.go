package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/kernels"
)

func TestBuildProblemVariants(t *testing.T) {
	if _, err := buildProblem("LU", "", "Sandybridge", "gnu-4.4.7", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := buildProblem("HPL", "", "Power7", "gnu-4.4.7", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := buildProblem("RT", "", "X-Gene", "gnu-4.4.7", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := buildProblem("NOPE", "", "Sandybridge", "gnu-4.4.7", 1); err == nil {
		t.Fatal("unknown problem accepted")
	}
	if _, err := buildProblem("LU", "", "C64", "gnu-4.4.7", 1); err == nil {
		t.Fatal("unknown machine accepted")
	}
	if _, err := buildProblem("LU", "", "Power7", "intel-15.0.1", 1); err == nil {
		t.Fatal("icc on Power7 accepted")
	}
}

func TestBuildProblemFromAnnotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kernel.orio")
	text := `
kernel tiny input 32
size N = 32
array A[N] elem 8
nest n
loop i = 0 .. N
stmt A[i] = A[i] flops 1
param U_I on i unroll 1..4
param T_I on i tile pow2 0..2
param RT_I on i regtile pow2 0..1
`
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := buildProblem("ignored", path, "Westmere", "gnu-4.4.7", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Space().NumParams() != 3 {
		t.Fatalf("annotated problem has %d params", p.Space().NumParams())
	}
	if _, err := buildProblem("x", filepath.Join(dir, "missing"), "Westmere", "gnu-4.4.7", 1); err == nil {
		t.Fatal("missing annotation file accepted")
	}
}

func TestEmitBestRequiresKernelProblem(t *testing.T) {
	hpl, err := buildProblem("HPL", "", "Sandybridge", "gnu-4.4.7", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := emitBest(hpl, hpl.Space().Default()); err == nil {
		t.Fatal("emit on a mini-app accepted")
	}
	lu, _ := buildProblem("LU", "", "Sandybridge", "gnu-4.4.7", 1)
	if _, ok := lu.(*kernels.Problem); !ok {
		t.Fatal("kernel problem type assertion broken")
	}
}
