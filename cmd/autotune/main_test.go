package main

import (
	"bytes"
	"context"
	"errors"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/broker/remote"
	"repro/internal/journal"
	"repro/internal/kernels"
	"repro/internal/search"
)

// TestMain lets the test binary stand in for the autotune command: when
// re-exec'd with AUTOTUNE_E2E_MAIN=1 it runs main() for the end-to-end
// signal tests below.
func TestMain(m *testing.M) {
	if os.Getenv("AUTOTUNE_E2E_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func TestBuildProblemVariants(t *testing.T) {
	if _, err := buildProblem("LU", "", "Sandybridge", "gnu-4.4.7", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := buildProblem("HPL", "", "Power7", "gnu-4.4.7", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := buildProblem("RT", "", "X-Gene", "gnu-4.4.7", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := buildProblem("NOPE", "", "Sandybridge", "gnu-4.4.7", 1); err == nil {
		t.Fatal("unknown problem accepted")
	}
	if _, err := buildProblem("LU", "", "C64", "gnu-4.4.7", 1); err == nil {
		t.Fatal("unknown machine accepted")
	}
	if _, err := buildProblem("LU", "", "Power7", "intel-15.0.1", 1); err == nil {
		t.Fatal("icc on Power7 accepted")
	}
}

func TestBuildProblemFromAnnotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kernel.orio")
	text := `
kernel tiny input 32
size N = 32
array A[N] elem 8
nest n
loop i = 0 .. N
stmt A[i] = A[i] flops 1
param U_I on i unroll 1..4
param T_I on i tile pow2 0..2
param RT_I on i regtile pow2 0..1
`
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := buildProblem("ignored", path, "Westmere", "gnu-4.4.7", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Space().NumParams() != 3 {
		t.Fatalf("annotated problem has %d params", p.Space().NumParams())
	}
	if _, err := buildProblem("x", filepath.Join(dir, "missing"), "Westmere", "gnu-4.4.7", 1); err == nil {
		t.Fatal("missing annotation file accepted")
	}
}

func TestEmitBestRequiresKernelProblem(t *testing.T) {
	hpl, err := buildProblem("HPL", "", "Sandybridge", "gnu-4.4.7", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := emitBest(hpl, hpl.Space().Default()); err == nil {
		t.Fatal("emit on a mini-app accepted")
	}
	lu, _ := buildProblem("LU", "", "Sandybridge", "gnu-4.4.7", 1)
	if _, ok := lu.(*kernels.Problem); !ok {
		t.Fatal("kernel problem type assertion broken")
	}
}

// autotuneCmd re-execs the test binary as the autotune command.
func autotuneCmd(args ...string) (*exec.Cmd, *bytes.Buffer) {
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "AUTOTUNE_E2E_MAIN=1")
	out := new(bytes.Buffer)
	cmd.Stdout = out
	cmd.Stderr = out
	return cmd, out
}

func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("command failed without an exit code: %v", err)
	}
	return ee.ExitCode()
}

// grepLine returns the first output line with the given prefix.
func grepLine(out, prefix string) string {
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, prefix) {
			return line
		}
	}
	return ""
}

func TestSIGINTLeavesResumableJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec trial skipped in -short mode")
	}
	jdir := filepath.Join(t.TempDir(), "journal")
	runFlags := []string{
		"-problem", "MM", "-machine", "Sandybridge",
		"-algo", "rs", "-nmax", "60", "-seed", "7",
		"-faults", "0.3", "-retries", "2", "-timeout", "30",
	}

	// Interrupt a throttled run mid-flight.
	child, childOut := autotuneCmd(append(runFlags, "-journal", jdir, "-throttle", "15ms")...)
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(250 * time.Millisecond)
	if err := child.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if code := exitCode(t, child.Wait()); code != exitInterrupted {
		t.Fatalf("interrupted run exited %d, want %d; output:\n%s", code, exitInterrupted, childOut)
	}

	// The journaled partial result must load cleanly.
	s, err := journal.Open(jdir)
	if err != nil {
		t.Fatalf("journal unreadable after SIGINT: %v", err)
	}
	n := s.Len()
	if _, err := s.Records(); err != nil {
		t.Fatalf("journaled partial records unreadable: %v", err)
	}
	if s.Done() {
		t.Fatal("interrupted journal claims completion")
	}
	s.Close()
	if n == 0 {
		t.Fatalf("no evaluations journaled before SIGINT; output:\n%s", childOut)
	}
	if n >= 60 {
		t.Fatalf("run completed (%d evals) before the signal landed", n)
	}
	t.Logf("SIGINT landed after %d journaled evaluations", n)

	// Resume (settings adopted from the journal) and an uninterrupted
	// reference run must agree on the final best.
	resume, resumeOut := autotuneCmd("-resume", jdir)
	if code := exitCode(t, resume.Run()); code != exitOK {
		t.Fatalf("resume exited %d; output:\n%s", code, resumeOut)
	}
	ref, refOut := autotuneCmd(runFlags...)
	if code := exitCode(t, ref.Run()); code != exitOK {
		t.Fatalf("reference run exited %d; output:\n%s", code, refOut)
	}
	for _, prefix := range []string{"best config:", "best run:", "search time:"} {
		got, want := grepLine(resumeOut.String(), prefix), grepLine(refOut.String(), prefix)
		if got == "" || got != want {
			t.Fatalf("resumed %q line differs:\n  resumed:   %s\n  reference: %s\nfull resume output:\n%s",
				prefix, got, want, resumeOut)
		}
	}
	if !strings.Contains(resumeOut.String(), "resumed:") {
		t.Fatalf("resume output does not report resumption:\n%s", resumeOut)
	}
}

func TestResumeRefusesMismatchedSettings(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec trial skipped in -short mode")
	}
	jdir := filepath.Join(t.TempDir(), "journal")
	first, firstOut := autotuneCmd("-problem", "ATAX", "-algo", "rs", "-nmax", "10", "-seed", "3", "-journal", jdir)
	if code := exitCode(t, first.Run()); code != exitOK {
		t.Fatalf("journaled run exited %d; output:\n%s", code, firstOut)
	}
	clash, clashOut := autotuneCmd("-resume", jdir, "-problem", "MM")
	if code := exitCode(t, clash.Run()); code != exitUsage {
		t.Fatalf("mismatched resume exited %d, want %d; output:\n%s", code, exitUsage, clashOut)
	}
	missing, _ := autotuneCmd("-resume", filepath.Join(t.TempDir(), "nope"))
	if code := exitCode(t, missing.Run()); code != exitUsage {
		t.Fatalf("resume of missing journal exited %d, want %d", code, exitUsage)
	}
}

// TestWorkersComposeWithJournaledResume: -workers only caps goroutine
// scheduling, so a journaled run under one worker count and a resume (or
// plain rerun) under another must agree on every result line.
func TestWorkersComposeWithJournaledResume(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec trial skipped in -short mode")
	}
	jdir := filepath.Join(t.TempDir(), "journal")
	runFlags := []string{"-problem", "ATAX", "-algo", "sa", "-nmax", "30", "-seed", "11"}

	wide, wideOut := autotuneCmd(append(runFlags, "-journal", jdir, "-workers", "8")...)
	if code := exitCode(t, wide.Run()); code != exitOK {
		t.Fatalf("workers=8 journaled run exited %d; output:\n%s", code, wideOut)
	}
	narrow, narrowOut := autotuneCmd(append(runFlags, "-workers", "1")...)
	if code := exitCode(t, narrow.Run()); code != exitOK {
		t.Fatalf("workers=1 run exited %d; output:\n%s", code, narrowOut)
	}
	resume, resumeOut := autotuneCmd("-resume", jdir, "-workers", "2")
	if code := exitCode(t, resume.Run()); code != exitOK {
		t.Fatalf("resume under workers=2 exited %d; output:\n%s", code, resumeOut)
	}
	for _, prefix := range []string{"best config:", "best run:", "search time:"} {
		want := grepLine(narrowOut.String(), prefix)
		if want == "" {
			t.Fatalf("workers=1 output missing %q line:\n%s", prefix, narrowOut)
		}
		if got := grepLine(wideOut.String(), prefix); got != want {
			t.Fatalf("workers=8 %q line differs:\n  workers=8: %s\n  workers=1: %s", prefix, got, want)
		}
		if got := grepLine(resumeOut.String(), prefix); got != want {
			t.Fatalf("resumed %q line differs:\n  resumed:   %s\n  workers=1: %s", prefix, got, want)
		}
	}
}

// TestBrokerFlagValidation pins the broker flag contract: explicitly
// non-positive shard counts, negative hedge delays, and incoherent
// remote flags are usage errors (exit 2) with a clear message, never
// silently coerced.
func TestBrokerFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"broker-workers zero", []string{"-broker-workers", "0"}, "-broker-workers must be > 0"},
		{"broker-workers negative", []string{"-broker-workers", "-3"}, "-broker-workers must be > 0"},
		{"hedge-after negative", []string{"-hedge-after", "-1ms"}, "-hedge-after must be >= 0"},
		{"broker-remote without addr", []string{"-broker-remote"}, "-broker-remote requires -workers-addr"},
		{"remote and shards", []string{"-workers-addr", "unix:/tmp/x.sock", "-broker"}, "mutually exclusive"},
		{"remote and broker-workers", []string{"-broker-remote", "-workers-addr", "unix:/tmp/x.sock", "-broker-workers", "2"}, "mutually exclusive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			args := append([]string{"-problem", "ATAX", "-nmax", "3"}, tc.args...)
			cmd, out := autotuneCmd(args...)
			if code := exitCode(t, cmd.Run()); code != exitUsage {
				t.Fatalf("exit %d, want %d; output:\n%s", code, exitUsage, out)
			}
			if !strings.Contains(out.String(), tc.want) {
				t.Fatalf("output missing %q:\n%s", tc.want, out)
			}
		})
	}
}

// TestRemoteWorkersServeAutotune is the CLI-level remote e2e: autotune
// listens on a unix socket, a brokerd-equivalent worker (the remote
// package driven directly, same wire path) serves the evaluations, and
// the output matches the inline run line for line.
func TestRemoteWorkersServeAutotune(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec trial skipped in -short mode")
	}
	runFlags := []string{"-problem", "ATAX", "-algo", "rs", "-nmax", "20", "-seed", "19"}
	inline, inlineOut := autotuneCmd(runFlags...)
	if code := exitCode(t, inline.Run()); code != exitOK {
		t.Fatalf("inline run exited %d; output:\n%s", code, inlineOut)
	}

	addr := "unix:" + filepath.Join(t.TempDir(), "w.sock")
	remoteCmd, remoteOut := autotuneCmd(append(runFlags, "-throttle", "5ms", "-broker-remote", "-workers-addr", addr)...)
	if err := remoteCmd.Start(); err != nil {
		t.Fatal(err)
	}
	w := &remote.Worker{Resolve: func(name string) (search.Problem, error) {
		return buildProblem("ATAX", "", "Sandybridge", "gnu-4.4.7", 1)
	}}
	wctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer wg.Wait()
	defer cancel()
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = w.Run(wctx, func(ctx context.Context) (net.Conn, error) {
			conn, err := remote.Dial(ctx, addr)
			if err != nil {
				// The driver may not be listening yet; Run's backoff retries.
				return nil, err
			}
			return conn, nil
		})
	}()
	if code := exitCode(t, remoteCmd.Wait()); code != exitOK {
		t.Fatalf("remote run exited %d; output:\n%s", code, remoteOut)
	}
	for _, prefix := range []string{"best config:", "best run:", "search time:"} {
		want := grepLine(inlineOut.String(), prefix)
		if want == "" {
			t.Fatalf("inline output missing %q line:\n%s", prefix, inlineOut)
		}
		if got := grepLine(remoteOut.String(), prefix); got != want {
			t.Fatalf("remote %q line differs:\n  remote: %s\n  inline: %s", prefix, got, want)
		}
	}
}
