// Command autotune tunes one problem on one simulated machine with a
// chosen search algorithm.
//
// Usage:
//
//	autotune -problem LU -machine Sandybridge [-compiler gnu-4.4.7]
//	         [-threads 1] [-algo rs|sa|ga|ps|ensemble] [-nmax 100] [-seed 42]
//	         [-faults 0.3] [-retries 2] [-timeout 30] [-workers N]
//	         [-broker] [-broker-workers N] [-hedge-after 50ms]
//	         [-broker-remote -workers-addr unix:/tmp/tune.sock]
//	         [-journal DIR] [-resume DIR] [-throttle 50ms]
//	         [-trace FILE] [-progress] [-metrics] [-metrics-addr ADDR]
//	         [-flight FILE] [-cpuprofile FILE] [-memprofile FILE]
//
// Problems: MM, ATAX, COR, LU (SPAPT kernels), HPL, RT (mini-apps), or
// -annotation FILE for a kernel in the annotation language.
//
// -faults F injects evaluation failures at total rate F (the machine's
// failure profile scaled so compile failures + crashes + hangs = F);
// -retries and -timeout set the resilient evaluator's budgets.
//
// Observability: -trace FILE streams every search event (evaluations,
// prune skips, retries, checkpoint writes, ...) as one JSON object per
// line; cmd/tracestat turns such a file into a per-phase time breakdown
// and convergence table. -progress draws a live best-so-far/evals-per-
// second line on stderr. -metrics prints an aggregated counter/histogram
// snapshot after the run; -metrics-addr serves the same snapshot live
// over HTTP (/metrics, with /healthz for probes). Brokered and remote
// runs carry a deterministic trace id (algo-problem-seed) on every
// dispatched task, so cmd/tracestat can stitch the coordinator's trace
// with the workers' (brokerd -trace) into one causal timeline; they
// also keep a fixed-size in-memory flight recorder, dumped to the
// -flight FILE when the run fails. -cpuprofile/-memprofile write
// standard pprof profiles. Telemetry is observational only: it draws no
// randomness, so a traced run returns bit-identical results to an
// untraced one.
//
// -journal DIR records every evaluation in a crash-safe append-only log
// under DIR: each record is checksummed and fsync'd before the search
// observes it, so a crash, power loss, or signal at any instant leaves a
// journal that resumes bit-exactly. SIGINT or SIGTERM drains the current
// evaluation, writes a final checkpoint, and exits with code 3; running
// again with -resume DIR (remaining settings are adopted from the
// journal) continues the search to the same final result an
// uninterrupted run would have produced. -throttle D pauses D of wall
// time per evaluation — it changes nothing about the result, only makes
// fast simulated runs interruptible (demos, tests).
//
// -broker routes every evaluation through the fault-tolerant in-process
// broker: queued worker shards with backpressure, capped-backoff
// retries, optional hedged re-dispatch (-hedge-after D), per-worker
// circuit breakers, and inline degradation when every worker is
// quarantined. Like -workers it is results-invariant: the broker moves
// evaluations between workers but never changes what they return, so a
// brokered run is bit-identical to an inline one. With -journal,
// brokered runs also journal the evaluation in flight, and the journal
// resumes with or without the broker.
//
// -broker-remote -workers-addr ADDR serves evaluations to remote worker
// processes (cmd/brokerd) connecting at ADDR (unix:/path or
// [tcp:]host:port) instead of in-process shards: lease-based task
// claims with heartbeat failure detection re-dispatch the work of dead
// or partitioned workers, and evaluations degrade inline while no
// worker is connected. Start workers with matching evaluation-stack
// flags (machine, faults, retries, timeout, seed) so remote evaluations
// are bit-identical to local ones.
//
// -workers N caps the OS threads the Go runtime schedules goroutines on
// (GOMAXPROCS; 0 keeps the runtime default). The search algorithms
// evaluate configurations strictly in sequence — parallelism never
// reorders evaluations or redistributes random streams — so -workers
// changes wall time only and composes with -journal/-resume: a journal
// written under one worker count resumes bit-exactly under any other.
//
// Exit codes: 0 success, 1 runtime failure, 2 bad usage (unknown
// problem, machine, compiler, or algorithm; mismatched resume), 3
// interrupted by SIGINT/SIGTERM (with -journal the journal is left
// resumable).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/annotate"
	"repro/internal/broker"
	"repro/internal/broker/remote"
	"repro/internal/codegen"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/miniapps"
	"repro/internal/obs"
	"repro/internal/opentuner"
	"repro/internal/rng"
	"repro/internal/search"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/transform"
)

const (
	exitOK          = 0
	exitError       = 1
	exitUsage       = 2
	exitInterrupted = 3
)

// warnf is the single diagnostic channel: every stderr message goes
// through it, prefixed with the program name.
func warnf(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "autotune: "+format+"\n", a...)
}

func main() { os.Exit(run()) }

func run() int {
	var (
		problem     = flag.String("problem", "LU", "MM|ATAX|COR|LU|HPL|RT")
		annotation  = flag.String("annotation", "", "path to an annotated kernel file (overrides -problem)")
		machineN    = flag.String("machine", "Sandybridge", "target machine")
		compilerN   = flag.String("compiler", "gnu-4.4.7", "compiler")
		threads     = flag.Int("threads", 1, "OpenMP threads")
		algo        = flag.String("algo", "rs", "rs|sa|ga|ps|ensemble")
		nmax        = flag.Int("nmax", 100, "evaluation budget")
		seed        = flag.Uint64("seed", 42, "random seed")
		faultRate   = flag.Float64("faults", 0, "total injected failure rate in [0,1) (0 disables)")
		retries     = flag.Int("retries", 2, "max retries per transient evaluation failure")
		timeout     = flag.Float64("timeout", 0, "per-evaluation run-time cap in seconds (0 disables censoring)")
		journalDir  = flag.String("journal", "", "crash-safe journal directory (created or resumed)")
		resumeDir   = flag.String("resume", "", "resume an interrupted run from its journal directory")
		throttle    = flag.Duration("throttle", 0, "wall-clock pause per evaluation (makes simulated runs interruptible)")
		workers     = flag.Int("workers", 0, "cap on OS threads for goroutine scheduling (0 = runtime default; results identical for any value)")
		brokerOn    = flag.Bool("broker", false, "route evaluations through the fault-tolerant broker (queued workers, retries, circuit breakers; results identical either way)")
		brokerW     = flag.Int("broker-workers", 0, "broker worker shards (0 = broker default; implies -broker)")
		hedgeAfter  = flag.Duration("hedge-after", 0, "broker hedged re-dispatch delay for straggling evaluations (0 disables; implies -broker)")
		brokerRem   = flag.Bool("broker-remote", false, "serve evaluations to remote workers (cmd/brokerd) instead of in-process shards (requires -workers-addr)")
		workAddr    = flag.String("workers-addr", "", "listen address for remote workers: unix:/path or [tcp:]host:port (implies -broker-remote)")
		verbose     = flag.Bool("v", false, "print every evaluation")
		emit        = flag.Bool("emit", false, "print the best variant as C code (kernel problems)")
		traceFile   = flag.String("trace", "", "write a JSONL event trace to FILE (read with cmd/tracestat)")
		progress    = flag.Bool("progress", false, "draw a live best-so-far/evals-per-sec line on stderr")
		metrics     = flag.Bool("metrics", false, "print an aggregated metrics snapshot after the run")
		flightFile  = flag.String("flight", "", "dump the in-memory flight recorder (last events, spans included) to FILE when the run fails")
		metricsAddr = flag.String("metrics-addr", "", "serve the live telemetry snapshot over HTTP on ADDR (/metrics and /healthz)")
		cpuprofile  = flag.String("cpuprofile", "", "write a pprof CPU profile to FILE")
		memprofile  = flag.String("memprofile", "", "write a pprof heap profile to FILE")
	)
	flag.Parse()

	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if *resumeDir != "" {
		if *journalDir != "" && *journalDir != *resumeDir {
			warnf("-journal and -resume name different directories")
			return exitUsage
		}
		*journalDir = *resumeDir
		if !journal.Exists(*resumeDir) {
			warnf("%s holds no journal to resume", *resumeDir)
			return exitUsage
		}
		m, err := journal.ReadMeta(*resumeDir)
		if err != nil {
			warnf("%v", err)
			return exitUsage
		}
		// Adopt the journaled run's settings for every flag the user did
		// not set explicitly; explicit conflicts surface as a meta
		// mismatch below rather than silently forking the run.
		if err := adoptMeta(m, explicit, map[string]any{
			"problem": problem, "annotation": annotation,
			"machine": machineN, "compiler": compilerN,
			"threads": threads, "algo": algo,
			"faults": faultRate, "retries": retries, "timeout": timeout,
		}, nmax, seed); err != nil {
			warnf("%v", err)
			return exitUsage
		}
	}

	if *faultRate < 0 || *faultRate >= 1 {
		warnf("-faults must be in [0,1), got %v", *faultRate)
		return exitUsage
	}
	if *workers < 0 {
		warnf("-workers must be >= 0, got %d", *workers)
		return exitUsage
	}
	if *workers > 0 {
		// Scheduling-only: evaluation order and random streams are fixed by
		// the algorithms themselves, so this never changes a result (and is
		// therefore not pinned into the journal meta).
		runtime.GOMAXPROCS(*workers)
	}

	p, err := buildProblem(*problem, *annotation, *machineN, *compilerN, *threads)
	if err != nil {
		warnf("%v", err)
		return exitUsage
	}

	// The fault-aware evaluation layer: inject failures (if asked) and
	// wrap with retry/timeout budgets. With neither faults nor budgets
	// requested the problem runs bare, exactly as before.
	faulted := *faultRate > 0
	var inj *faults.Injector
	if faulted || *timeout > 0 {
		fp := search.Fallible(p)
		if faulted {
			inj = faults.Wrap(p, faults.Profile(*machineN).ScaledTo(*faultRate), *seed)
			fp = inj
		}
		p = search.NewResilient(fp, search.ResilientOptions{
			Retries: *retries,
			Timeout: *timeout,
		})
	}
	if *throttle > 0 {
		p = throttled{Problem: p, d: *throttle}
	}

	// The evaluation broker wraps outermost, so the full resilient stack
	// runs inside its worker shards (or travels to remote workers). Like
	// -workers it is results-invariant (and therefore absent from
	// metaExtra): the broker only changes where evaluations execute,
	// never what they return.
	if explicit["broker-workers"] && *brokerW <= 0 {
		warnf("-broker-workers must be > 0, got %d", *brokerW)
		return exitUsage
	}
	if *hedgeAfter < 0 {
		warnf("-hedge-after must be >= 0, got %v", *hedgeAfter)
		return exitUsage
	}
	remoteOn := *brokerRem || *workAddr != ""
	brokered := *brokerOn || *brokerW > 0 || *hedgeAfter > 0
	switch {
	case remoteOn && *workAddr == "":
		warnf("-broker-remote requires -workers-addr (where cmd/brokerd workers connect)")
		return exitUsage
	case remoteOn && (*brokerOn || *brokerW > 0):
		warnf("-broker-remote and in-process broker shards (-broker/-broker-workers) are mutually exclusive")
		return exitUsage
	case remoteOn:
		b := broker.New(broker.Options{External: true, HedgeAfter: *hedgeAfter})
		defer b.Close()
		ln, err := remote.Listen(*workAddr)
		if err != nil {
			warnf("workers-addr: %v", err)
			return exitError
		}
		pool := remote.NewPool(b, remote.PoolOptions{})
		defer pool.Close()
		pool.Serve(ln)
		warnf("serving evaluations to remote workers on %s (start cmd/brokerd with -connect %s)", *workAddr, *workAddr)
		p = b.Problem(p)
	case brokered:
		b := broker.New(broker.Options{Workers: *brokerW, HedgeAfter: *hedgeAfter})
		defer b.Close()
		p = b.Problem(p)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			warnf("%v", err)
			return exitError
		}
		defer func() {
			if err := f.Close(); err != nil {
				warnf("cpuprofile: %v", err)
			}
		}()
		if err := pprof.StartCPUProfile(f); err != nil {
			warnf("cpuprofile: %v", err)
			return exitError
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				warnf("%v", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				warnf("memprofile: %v", err)
			}
			if err := f.Close(); err != nil {
				warnf("memprofile: %v", err)
			}
		}()
	}

	// SIGINT/SIGTERM cancel the context; searches drain the evaluation in
	// flight and stop at the next boundary, so a journaled run always
	// exits through its final checkpoint.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// Telemetry: compose the requested sinks and put the tracer on the
	// context every search layer reads it from. No sinks -> nil tracer ->
	// zero overhead on the hot path.
	var sinks []obs.Sink
	var traceSink *obs.JSONLSink
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			warnf("%v", err)
			return exitError
		}
		traceSink = obs.NewJSONLSink(f)
		sinks = append(sinks, traceSink)
	}
	var reg *obs.Registry
	if *metrics || *metricsAddr != "" {
		reg = obs.NewRegistry()
		sinks = append(sinks, obs.NewMetricsSink(reg))
	}
	var prog *obs.ProgressSink
	if *progress {
		prog = obs.NewProgressSink(os.Stderr, 0)
		sinks = append(sinks, prog)
	}
	// The flight recorder is always on for brokered and remote runs: a
	// fixed-size in-memory ring of the last events, persisted only when
	// the run fails and -flight names a destination.
	var rec *obs.Recorder
	if *flightFile != "" || brokered || remoteOn {
		rec = obs.NewRecorder(0)
		sinks = append(sinks, rec)
	}
	ctx = obs.WithTracer(ctx, obs.New(obs.Multi(sinks...)))
	// The run's trace context: a deterministic id derived from the run
	// coordinates, so coordinator and worker traces of one run stitch by
	// the same key (cmd/tracestat). Spans are only emitted on broker
	// paths, and only when a sink is attached.
	ctx = obs.WithTrace(ctx, obs.TraceContext{
		TraceID: fmt.Sprintf("%s-%s-%d", *algo, p.Name(), *seed),
		SpanID:  obs.RootSpanID,
	})
	if *metricsAddr != "" {
		srv, serr := obs.ServeMetrics(*metricsAddr, reg)
		if serr != nil {
			warnf("metrics-addr: %v", serr)
			return exitError
		}
		warnf("metrics at http://%s/metrics", srv.Addr())
		// Best-effort teardown: the process is exiting either way.
		defer func() { _ = srv.Close() }()
	}
	if inj != nil {
		for _, w := range inj.Warnings() {
			warnf("faults: %s", w)
			obs.FromContext(ctx).Warn(*algo, "faults: "+w)
		}
	}

	var (
		res   *search.Result
		info  *journal.RunInfo
		pulls map[string]int
	)
	if *journalDir != "" {
		// Brokered runs journal in-flight work, so a SIGKILL mid-
		// evaluation still resumes cleanly (and the resume may drop the
		// broker entirely).
		wopt := journal.WrapOptions{TrackInFlight: brokered || remoteOn}
		res, info, err = runJournaled(ctx, *journalDir, p, *algo, *nmax, *seed, metaExtra(
			*problem, *annotation, *machineN, *compilerN, *threads, *algo, *faultRate, *retries, *timeout), wopt, &pulls)
	} else {
		res, err = runDirect(ctx, p, *algo, *nmax, *seed, &pulls)
	}
	// Read the interruption state before stopSignals: the stop function
	// cancels the context itself, which must not read as a signal.
	interrupted := ctx.Err() != nil && (info == nil || !info.Done)
	stopSignals()
	if prog != nil {
		prog.Finish()
	}
	if traceSink != nil {
		if cerr := traceSink.Close(); cerr != nil {
			warnf("trace: %v", cerr)
		}
	}
	// A failed run persists its flight recording: the last events
	// (spans included) leading up to the failure.
	dumpFlight := func() {
		if rec == nil || *flightFile == "" {
			return
		}
		if derr := rec.Dump(*flightFile); derr != nil {
			warnf("flight: %v", derr)
		} else {
			warnf("flight recording dumped to %s", *flightFile)
		}
	}
	if err != nil {
		dumpFlight()
		warnf("%v", err)
		if errors.Is(err, journal.ErrMetaMismatch) {
			return exitUsage
		}
		return exitError
	}

	if info != nil && info.Resumed {
		path := "replay"
		if info.FastPath {
			path = "checkpoint fast path"
		}
		fmt.Printf("resumed:     %d journaled evaluations (%s)\n", info.Prior, path)
	}
	if pulls != nil {
		fmt.Printf("technique pulls: %v\n", pulls)
	}

	if *verbose {
		for i, rec := range res.Records {
			fmt.Printf("%3d  run=%9.4fs  clock=%10.2fs  status=%-10s %s\n",
				i+1, rec.RunTime, rec.Elapsed, rec.StatusLabel(), p.Space().String(rec.Config))
		}
	}
	best, idx, ok := res.Best()
	if ok {
		fmt.Printf("problem:     %s\n", p.Name())
		fmt.Printf("algorithm:   %s, %d evaluations\n", res.Algorithm, len(res.Records))
		if counts := res.Counts(); counts.Failed > 0 || counts.Censored > 0 || counts.Retried > 0 {
			fmt.Printf("statuses:    %d ok, %d censored, %d failed, %d retried (%d extra attempts)\n",
				counts.OK, counts.Censored, counts.Failed, counts.Retried, counts.Retries)
		}
		fmt.Printf("best config: %s\n", p.Space().String(best.Config))
		fmt.Printf("best run:    %.4f s (found after %d evaluations, %.1f s of search)\n",
			best.RunTime, idx+1, res.Records[idx].Elapsed)
		fmt.Printf("search time: %.1f s total\n", res.Elapsed())
	}
	if reg != nil {
		fmt.Println()
		fmt.Print(reg.Snapshot())
	}

	if interrupted {
		warnf("interrupted after %d evaluations", len(res.Records))
		if *journalDir != "" {
			warnf("journal saved; continue with: autotune -resume %s", *journalDir)
		}
		return exitInterrupted
	}
	if !ok {
		dumpFlight()
		warnf("no successful evaluations (every configuration failed)")
		return exitError
	}

	if *emit {
		if err := emitBest(p, best.Config); err != nil {
			warnf("emit: %v", err)
			return exitError
		}
	}
	return exitOK
}

// runDirect runs the chosen algorithm without journaling.
func runDirect(ctx context.Context, p search.Problem, algo string, nmax int, seed uint64,
	pulls *map[string]int) (*search.Result, error) {

	drive, err := driveFor(algo, nmax, seed, pulls)
	if err != nil {
		return nil, err
	}
	return drive(ctx, p), nil
}

// runJournaled runs the chosen algorithm through the crash-safe journal
// in dir, creating it or resuming bit-exactly from what it holds.
func runJournaled(ctx context.Context, dir string, p search.Problem, algo string, nmax int,
	seed uint64, extra map[string]string, wopt journal.WrapOptions, pulls *map[string]int) (*search.Result, *journal.RunInfo, error) {

	if algo == "rs" {
		// Random search gets the checkpoint fast path: resume continues
		// directly from the restored sampler stream, no replay.
		return journal.RunRS(ctx, dir, p, nmax, seed, extra, wopt)
	}
	drive, err := driveFor(algo, nmax, seed, pulls)
	if err != nil {
		return nil, nil, err
	}
	meta := journal.Meta{Problem: p.Name(), Algorithm: algo, Seed: seed, NMax: nmax, Extra: extra}
	return journal.Run(ctx, dir, meta, p, wopt, drive)
}

// driveFor returns the deterministic driver for one algorithm: the same
// closure serves fresh runs and journal replays, so both draw the same
// random streams.
func driveFor(algo string, nmax int, seed uint64, pulls *map[string]int) (
	func(context.Context, search.Problem) *search.Result, error) {

	switch algo {
	case "rs":
		return func(ctx context.Context, p search.Problem) *search.Result {
			return search.RS(ctx, p, nmax, rng.New(seed))
		}, nil
	case "sa":
		return func(ctx context.Context, p search.Problem) *search.Result {
			r := rng.New(seed)
			return search.Drive(ctx, p, search.NewAnneal(p.Space(), r, 0.95), nmax)
		}, nil
	case "ga":
		return func(ctx context.Context, p search.Problem) *search.Result {
			r := rng.New(seed)
			return search.Drive(ctx, p, search.NewGenetic(p.Space(), r, 16, 0.15), nmax)
		}, nil
	case "ps":
		return func(ctx context.Context, p search.Problem) *search.Result {
			r := rng.New(seed)
			return search.Drive(ctx, p, search.NewPattern(p.Space(), r, 4), nmax)
		}, nil
	case "ensemble":
		return func(ctx context.Context, p search.Problem) *search.Result {
			tuner := opentuner.New(opentuner.Options{NMax: nmax}, rng.New(seed))
			res, pl := tuner.Run(ctx, p)
			*pulls = pl
			return res
		}, nil
	}
	return nil, fmt.Errorf("unknown algorithm %q (known: rs, sa, ga, ps, ensemble)", algo)
}

// metaExtra pins every setting that shapes evaluation semantics into the
// journal meta, so a resume under different settings is refused instead
// of silently mixing two runs. -throttle is deliberately absent: it only
// spends wall time.
func metaExtra(problem, annotation, machineN, compilerN string, threads int, algo string,
	faultRate float64, retries int, timeout float64) map[string]string {
	return map[string]string{
		"problem":    problem,
		"annotation": annotation,
		"machine":    machineN,
		"compiler":   compilerN,
		"threads":    strconv.Itoa(threads),
		"algo":       algo,
		"faults":     strconv.FormatFloat(faultRate, 'g', -1, 64),
		"retries":    strconv.Itoa(retries),
		"timeout":    strconv.FormatFloat(timeout, 'g', -1, 64),
	}
}

// adoptMeta fills every flag the user left unset from the journaled
// run's meta, so `autotune -resume DIR` alone continues the run.
func adoptMeta(m journal.Meta, explicit map[string]bool, flags map[string]any,
	nmax *int, seed *uint64) error {

	if !explicit["nmax"] {
		*nmax = m.NMax
	}
	if !explicit["seed"] {
		*seed = m.Seed
	}
	for name, dst := range flags {
		v, ok := m.Extra[name]
		if explicit[name] || !ok {
			continue
		}
		var err error
		switch d := dst.(type) {
		case *string:
			*d = v
		case *int:
			*d, err = strconv.Atoi(v)
		case *float64:
			*d, err = strconv.ParseFloat(v, 64)
		}
		if err != nil {
			return fmt.Errorf("journal meta %s=%q: %w", name, v, err)
		}
	}
	return nil
}

// throttled pauses a fixed wall-clock duration before each evaluation.
// The pause is interruptible and changes nothing about outcomes, so it
// is not journaled.
type throttled struct {
	search.Problem
	d time.Duration
}

func (t throttled) EvaluateFull(ctx context.Context, c space.Config) search.Outcome {
	timer := time.NewTimer(t.d)
	select {
	case <-ctx.Done():
		timer.Stop()
	case <-timer.C:
	}
	return search.EvaluateFull(ctx, t.Problem, c)
}

// unwrapped peels the fault-injection and resilience layers off a
// problem, returning the underlying one.
func unwrapped(p search.Problem) search.Problem {
	for {
		if t, ok := p.(throttled); ok {
			p = t.Problem
			continue
		}
		if res, ok := p.(*search.Resilient); ok {
			if u, ok := res.P.(interface{ Unwrap() search.Problem }); ok {
				p = u.Unwrap()
				continue
			}
			if inner, ok := res.P.(search.Problem); ok {
				p = inner
				continue
			}
			return p
		}
		if u, ok := p.(interface{ Unwrap() search.Problem }); ok {
			p = u.Unwrap()
			continue
		}
		return p
	}
}

// emitBest prints the winning configuration's generated C code when the
// problem is a kernel (mini-apps have no code to emit).
func emitBest(p search.Problem, c space.Config) error {
	kp, ok := unwrapped(p).(*kernels.Problem)
	if !ok {
		return fmt.Errorf("-emit only applies to kernel problems")
	}
	k := kp.Kernel
	specs := k.SpecsFor(c)
	fmt.Println()
	fmt.Print(codegen.Preamble())
	for ni, nest := range k.Nests {
		variant, err := transform.Apply(nest, specs[ni])
		if err != nil {
			return err
		}
		src, err := codegen.Emit(variant, codegen.Options{
			OpenMP:        k.OMPEnabled(c) && kp.Target.Threads > 1,
			VectorHint:    specs[ni].VectorHint,
			ScalarReplace: specs[ni].ScalarReplace,
			FuncName:      fmt.Sprintf("%s_variant_%d", k.Name, ni),
		})
		if err != nil {
			return err
		}
		fmt.Println(src)
	}
	return nil
}

func buildProblem(name, annotation, machineN, compilerN string, threads int) (search.Problem, error) {
	m, err := machine.ByName(machineN)
	if err != nil {
		return nil, err
	}
	if annotation != "" {
		text, err := os.ReadFile(annotation)
		if err != nil {
			return nil, err
		}
		k, err := annotate.Parse(string(text))
		if err != nil {
			return nil, err
		}
		comp, err := machine.CompilerByName(compilerN)
		if err != nil {
			return nil, err
		}
		return kernels.NewProblem(k, sim.Target{Machine: m, Compiler: comp, Threads: threads}), nil
	}
	switch name {
	case "HPL":
		return miniapps.NewProblem(miniapps.HPL(), m), nil
	case "RT":
		return miniapps.NewProblem(miniapps.RT(), m), nil
	default:
		k, err := kernels.ByName(name)
		if err != nil {
			names := make([]string, 0, len(kernels.All())+2)
			for _, kn := range kernels.All() {
				names = append(names, kn.Name)
			}
			names = append(names, "HPL", "RT")
			return nil, fmt.Errorf("unknown problem %q (known: %s)", name, strings.Join(names, ", "))
		}
		comp, err := machine.CompilerByName(compilerN)
		if err != nil {
			return nil, err
		}
		if !m.SupportsCompiler(comp) {
			return nil, fmt.Errorf("compiler %s not available on %s", compilerN, machineN)
		}
		return kernels.NewProblem(k, sim.Target{Machine: m, Compiler: comp, Threads: threads}), nil
	}
}
