// Command autotune tunes one problem on one simulated machine with a
// chosen search algorithm.
//
// Usage:
//
//	autotune -problem LU -machine Sandybridge [-compiler gnu-4.4.7]
//	         [-threads 1] [-algo rs|sa|ga|ps|ensemble] [-nmax 100] [-seed 42]
//	         [-faults 0.3] [-retries 2] [-timeout 30]
//
// Problems: MM, ATAX, COR, LU (SPAPT kernels), HPL, RT (mini-apps), or
// -annotation FILE for a kernel in the annotation language.
//
// -faults F injects evaluation failures at total rate F (the machine's
// failure profile scaled so compile failures + crashes + hangs = F);
// -retries and -timeout set the resilient evaluator's budgets. Exit
// codes: 0 success, 1 runtime failure, 2 bad usage (unknown problem,
// machine, compiler, or algorithm).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/annotate"
	"repro/internal/codegen"
	"repro/internal/faults"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/miniapps"
	"repro/internal/opentuner"
	"repro/internal/rng"
	"repro/internal/search"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/transform"
)

const (
	exitOK    = 0
	exitError = 1
	exitUsage = 2
)

func main() { os.Exit(run()) }

func run() int {
	var (
		problem    = flag.String("problem", "LU", "MM|ATAX|COR|LU|HPL|RT")
		annotation = flag.String("annotation", "", "path to an annotated kernel file (overrides -problem)")
		machineN   = flag.String("machine", "Sandybridge", "target machine")
		compilerN  = flag.String("compiler", "gnu-4.4.7", "compiler")
		threads    = flag.Int("threads", 1, "OpenMP threads")
		algo       = flag.String("algo", "rs", "rs|sa|ga|ps|ensemble")
		nmax       = flag.Int("nmax", 100, "evaluation budget")
		seed       = flag.Uint64("seed", 42, "random seed")
		faultRate  = flag.Float64("faults", 0, "total injected failure rate in [0,1) (0 disables)")
		retries    = flag.Int("retries", 2, "max retries per transient evaluation failure")
		timeout    = flag.Float64("timeout", 0, "per-evaluation run-time cap in seconds (0 disables censoring)")
		verbose    = flag.Bool("v", false, "print every evaluation")
		emit       = flag.Bool("emit", false, "print the best variant as C code (kernel problems)")
	)
	flag.Parse()

	if *faultRate < 0 || *faultRate >= 1 {
		fmt.Fprintf(os.Stderr, "autotune: -faults must be in [0,1), got %v\n", *faultRate)
		return exitUsage
	}

	p, err := buildProblem(*problem, *annotation, *machineN, *compilerN, *threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "autotune:", err)
		return exitUsage
	}

	// The fault-aware evaluation layer: inject failures (if asked) and
	// wrap with retry/timeout budgets. With neither faults nor budgets
	// requested the problem runs bare, exactly as before.
	faulted := *faultRate > 0
	if faulted || *timeout > 0 {
		fp := search.Fallible(p)
		if faulted {
			fp = faults.Wrap(p, faults.Profile(*machineN).ScaledTo(*faultRate), *seed)
		}
		p = search.NewResilient(fp, search.ResilientOptions{
			Retries: *retries,
			Timeout: *timeout,
		})
	}

	r := rng.New(*seed)
	var res *search.Result
	switch *algo {
	case "rs":
		res = search.RS(p, *nmax, r)
	case "sa":
		res = search.Drive(p, search.NewAnneal(p.Space(), r, 0.95), *nmax)
	case "ga":
		res = search.Drive(p, search.NewGenetic(p.Space(), r, 16, 0.15), *nmax)
	case "ps":
		res = search.Drive(p, search.NewPattern(p.Space(), r, 4), *nmax)
	case "ensemble":
		tuner := opentuner.New(opentuner.Options{NMax: *nmax}, r)
		var pulls map[string]int
		res, pulls = tuner.Run(p)
		defer func() { fmt.Printf("technique pulls: %v\n", pulls) }()
	default:
		fmt.Fprintf(os.Stderr, "autotune: unknown algorithm %q (known: rs, sa, ga, ps, ensemble)\n", *algo)
		return exitUsage
	}

	if *verbose {
		for i, rec := range res.Records {
			fmt.Printf("%3d  run=%9.4fs  clock=%10.2fs  status=%-10s %s\n",
				i+1, rec.RunTime, rec.Elapsed, rec.StatusLabel(), p.Space().String(rec.Config))
		}
	}
	best, idx, ok := res.Best()
	if !ok {
		fmt.Fprintln(os.Stderr, "autotune: no successful evaluations (every configuration failed)")
		return exitError
	}
	fmt.Printf("problem:     %s\n", p.Name())
	fmt.Printf("algorithm:   %s, %d evaluations\n", res.Algorithm, len(res.Records))
	if counts := res.Counts(); counts.Failed > 0 || counts.Censored > 0 || counts.Retried > 0 {
		fmt.Printf("statuses:    %d ok, %d censored, %d failed, %d retried (%d extra attempts)\n",
			counts.OK, counts.Censored, counts.Failed, counts.Retried, counts.Retries)
	}
	fmt.Printf("best config: %s\n", p.Space().String(best.Config))
	fmt.Printf("best run:    %.4f s (found after %d evaluations, %.1f s of search)\n",
		best.RunTime, idx+1, res.Records[idx].Elapsed)
	fmt.Printf("search time: %.1f s total\n", res.Elapsed())

	if *emit {
		if err := emitBest(p, best.Config); err != nil {
			fmt.Fprintln(os.Stderr, "autotune: emit:", err)
			return exitError
		}
	}
	return exitOK
}

// unwrapped peels the fault-injection and resilience layers off a
// problem, returning the underlying one.
func unwrapped(p search.Problem) search.Problem {
	for {
		if res, ok := p.(*search.Resilient); ok {
			if u, ok := res.P.(interface{ Unwrap() search.Problem }); ok {
				p = u.Unwrap()
				continue
			}
			if inner, ok := res.P.(search.Problem); ok {
				p = inner
				continue
			}
			return p
		}
		if u, ok := p.(interface{ Unwrap() search.Problem }); ok {
			p = u.Unwrap()
			continue
		}
		return p
	}
}

// emitBest prints the winning configuration's generated C code when the
// problem is a kernel (mini-apps have no code to emit).
func emitBest(p search.Problem, c space.Config) error {
	kp, ok := unwrapped(p).(*kernels.Problem)
	if !ok {
		return fmt.Errorf("-emit only applies to kernel problems")
	}
	k := kp.Kernel
	specs := k.SpecsFor(c)
	fmt.Println()
	fmt.Print(codegen.Preamble())
	for ni, nest := range k.Nests {
		variant, err := transform.Apply(nest, specs[ni])
		if err != nil {
			return err
		}
		src, err := codegen.Emit(variant, codegen.Options{
			OpenMP:        k.OMPEnabled(c) && kp.Target.Threads > 1,
			VectorHint:    specs[ni].VectorHint,
			ScalarReplace: specs[ni].ScalarReplace,
			FuncName:      fmt.Sprintf("%s_variant_%d", k.Name, ni),
		})
		if err != nil {
			return err
		}
		fmt.Println(src)
	}
	return nil
}

func buildProblem(name, annotation, machineN, compilerN string, threads int) (search.Problem, error) {
	m, err := machine.ByName(machineN)
	if err != nil {
		return nil, err
	}
	if annotation != "" {
		text, err := os.ReadFile(annotation)
		if err != nil {
			return nil, err
		}
		k, err := annotate.Parse(string(text))
		if err != nil {
			return nil, err
		}
		comp, err := machine.CompilerByName(compilerN)
		if err != nil {
			return nil, err
		}
		return kernels.NewProblem(k, sim.Target{Machine: m, Compiler: comp, Threads: threads}), nil
	}
	switch name {
	case "HPL":
		return miniapps.NewProblem(miniapps.HPL(), m), nil
	case "RT":
		return miniapps.NewProblem(miniapps.RT(), m), nil
	default:
		k, err := kernels.ByName(name)
		if err != nil {
			names := make([]string, 0, len(kernels.All())+2)
			for _, kn := range kernels.All() {
				names = append(names, kn.Name)
			}
			names = append(names, "HPL", "RT")
			return nil, fmt.Errorf("unknown problem %q (known: %s)", name, strings.Join(names, ", "))
		}
		comp, err := machine.CompilerByName(compilerN)
		if err != nil {
			return nil, err
		}
		if !m.SupportsCompiler(comp) {
			return nil, fmt.Errorf("compiler %s not available on %s", compilerN, machineN)
		}
		return kernels.NewProblem(k, sim.Target{Machine: m, Compiler: comp, Threads: threads}), nil
	}
}
