// Transfer example — the paper's headline experiment: use LU autotuning
// data collected on Westmere to accelerate the search on Sandybridge.
//
//	go run ./examples/transfer-lu
package main

import (
	"context"

	"fmt"
	"log"

	autotune "repro"
)

func main() {
	src, err := autotune.NewKernelProblem("LU", "Westmere", "gnu-4.4.7", 1)
	if err != nil {
		log.Fatal(err)
	}
	tgt, err := autotune.NewKernelProblem("LU", "Sandybridge", "gnu-4.4.7", 1)
	if err != nil {
		log.Fatal(err)
	}

	// One call runs the whole methodology: collect T_a on the source,
	// fit the random-forest surrogate, and race RS against the pruning
	// (RSp), biasing (RSb), and model-free (RSpf, RSbf) variants on the
	// target under common random numbers.
	out, err := autotune.Transfer(context.Background(), src, tgt, autotune.TransferOptions{
		NMax:     100,   // evaluation budget per algorithm
		PoolSize: 10000, // configuration pool N
		DeltaPct: 20,    // RSp cutoff quantile
		Seed:     2016,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("source %s -> target %s\n", out.Source, out.Target)
	fmt.Printf("cross-machine run-time correlation: pearson=%.2f spearman=%.2f\n\n",
		out.Pearson, out.Spearman)

	rsBest, _, _ := out.RS.Best()
	fmt.Printf("%-5s best %.3f s (baseline)\n", "RS", rsBest.RunTime)
	for _, name := range []string{"RSp", "RSb", "RSpf", "RSbf"} {
		sp := out.Speedups[name]
		fmt.Printf("%-5s performance speedup %.2fx, search-time speedup %.2fx\n",
			name, sp.Performance, sp.SearchTime)
	}

	// The surrogate itself is reusable: predict before you measure.
	sur, err := autotune.FitSurrogate(out.Ta, src.Space(), src.Name(),
		autotune.ForestParams{}, 7)
	if err != nil {
		log.Fatal(err)
	}
	c := tgt.Space().Default()
	fmt.Printf("\nsurrogate predicts %.3f s for the untransformed default\n",
		sur.Predict(tgt.Space().Encode(c)))
}
