// HPL example: tune the High Performance LINPACK mini-app (15 parameters:
// block size, process grid, broadcast algorithm, ...) with the
// OpenTuner-style technique ensemble, then transfer the result to
// another machine — and watch the transfer struggle, because HPL's
// cross-machine correlation is weak (as the paper observed).
//
//	go run ./examples/hpl
package main

import (
	"context"

	"fmt"
	"log"

	autotune "repro"
)

func main() {
	sandy, err := autotune.NewHPLProblem("Sandybridge")
	if err != nil {
		log.Fatal(err)
	}

	// Ensemble tuning (SA + GA + pattern search + random under a UCB
	// bandit), as the paper does with OpenTuner.
	res, pulls := autotune.EnsembleTune(context.Background(), sandy, 100, 1)
	best, _, _ := res.Best()
	fmt.Printf("ensemble best on Sandybridge: %.1f s\n", best.RunTime)
	fmt.Printf("  %s\n", sandy.Space().String(best.Config))
	fmt.Printf("technique budget allocation: %v\n\n", pulls)

	// Now the transfer view: Westmere data guiding Sandybridge.
	west, err := autotune.NewHPLProblem("Westmere")
	if err != nil {
		log.Fatal(err)
	}
	out, err := autotune.Transfer(context.Background(), west, sandy, autotune.TransferOptions{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HPL cross-machine correlation: pearson=%.2f spearman=%.2f (weak!)\n",
		out.Pearson, out.Spearman)
	sp := out.Speedups["RSb"]
	fmt.Printf("RSb transfer: performance %.2fx, search time %.2fx — ", sp.Performance, sp.SearchTime)
	if sp.Success {
		fmt.Println("a lucky success; HPL transfers are unreliable")
	} else {
		fmt.Println("no benefit, as the paper found for HPL")
	}
}
