// Flag-tuning example — the paper's Raytracer study: tune the 143 g++
// flags and 104 numeric parameters of a C++ raytracer, then reuse the
// knowledge across machines. Flag effects are largely portable across
// the big out-of-order machines, so biasing transfers well.
//
//	go run ./examples/flagtuning
package main

import (
	"context"

	"fmt"
	"log"

	autotune "repro"
)

func main() {
	west, err := autotune.NewRTProblem("Westmere")
	if err != nil {
		log.Fatal(err)
	}
	sandy, err := autotune.NewRTProblem("Sandybridge")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flag space: %d parameters, %.3g configurations\n",
		sandy.Space().NumParams(), sandy.Space().Size())

	out, err := autotune.Transfer(context.Background(), west, sandy, autotune.TransferOptions{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("render-time correlation across machines: spearman=%.2f\n", out.Spearman)
	for _, name := range []string{"RSp", "RSb"} {
		sp := out.Speedups[name]
		fmt.Printf("%-4s performance %.2fx, search time %.2fx\n",
			name, sp.Performance, sp.SearchTime)
	}

	// Every RT evaluation pays a full g++ recompile, so pruning bad flag
	// sets without compiling them is where the search time goes.
	rsBest, rsIdx, _ := out.RS.Best()
	fmt.Printf("\nRS spent %.0f s (mostly compiles) to reach its best %.2f s render\n",
		out.RS.Records[rsIdx].Elapsed, rsBest.RunTime)
	if t, ok := out.RSb.TimeToReach(rsBest.RunTime); ok {
		fmt.Printf("RSb matched that quality after %.0f s of its own clock\n", t)
	} else {
		fmt.Println("RSb never matched that exact quality on this seed")
	}

	// Which flags mattered? Ask the surrogate's feature importances.
	sur, err := autotune.FitSurrogate(out.Ta, west.Space(), west.Name(),
		autotune.ForestParams{}, 11)
	if err != nil {
		log.Fatal(err)
	}
	imp := sur.Forest.Importance()
	names := west.Space().FeatureNames()
	bestIdx, second := 0, 1
	for i := 1; i < len(imp); i++ {
		switch {
		case imp[i] > imp[bestIdx]:
			second, bestIdx = bestIdx, i
		case i != bestIdx && imp[i] > imp[second]:
			second = i
		}
	}
	fmt.Printf("most informative flags: %s (%.0f%%), %s (%.0f%%)\n",
		names[bestIdx], imp[bestIdx]*100, names[second], imp[second]*100)
}
