// Quickstart: autotune the LU decomposition kernel on the simulated
// Sandybridge machine with plain random search, and print the winner.
//
//	go run ./examples/quickstart
package main

import (
	"context"

	"fmt"
	"log"

	autotune "repro"
)

func main() {
	// A tuning problem = kernel x machine x compiler (x threads).
	problem, err := autotune.NewKernelProblem("LU", "Sandybridge", "gnu-4.4.7", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuning %s over %.3g configurations\n",
		problem.Name(), problem.Space().Size())

	// 100 evaluations of random search without replacement (the paper's
	// budget), seeded for reproducibility.
	result := autotune.RandomSearch(context.Background(), problem, 100, 42)

	best, foundAt, _ := result.Best()
	fmt.Printf("evaluated %d configurations in %.0f simulated seconds\n",
		len(result.Records), result.Elapsed())
	fmt.Printf("best run time %.3f s, found at evaluation %d:\n  %s\n",
		best.RunTime, foundAt+1, problem.Space().String(best.Config))

	// The best-so-far trajectory (the y-axis of the paper's figures).
	traj := result.BestSoFar()
	fmt.Printf("best-so-far after 10/50/100 evals: %.3f / %.3f / %.3f s\n",
		traj[9], traj[49], traj[99])
}
