// Annotated-kernel example: define a custom kernel in the Orio-inspired
// annotation language, tune it, transfer the tuning to another machine,
// and emit the winning variant as C code — the full pipeline the paper's
// toolchain (Orio + search + surrogate) provides.
//
//	go run ./examples/annotated
package main

import (
	"context"

	"fmt"
	"log"

	autotune "repro"
	"repro/internal/codegen"
	"repro/internal/kernels"
	"repro/internal/transform"
)

// A symmetric rank-k update (SYRK): C += A * A^T, a kernel that is not
// in the SPAPT four but uses the same transformation vocabulary.
const syrk = `
kernel syrk input 1200x1200
size N = 1200
array A[N][N] elem 8
array C[N][N] elem 8

nest update
loop i = 0 .. N
loop j = 0 .. i+1       # lower triangle only
loop k = 0 .. N
stmt C[i][j] += A[i][k] * A[j][k] flops 2

param U_I on i unroll 1..16
param T_I on i tile pow2 0..8
param RT_I on i regtile pow2 0..3
param U_J on j unroll 1..16
param T_J on j tile pow2 0..8
param RT_J on j regtile pow2 0..3
param U_K on k unroll 1..16
param T_K on k tile pow2 0..8
param RT_K on k regtile pow2 0..3
switch SCR
switch VEC
`

func main() {
	kernel, err := autotune.ParseKernel(syrk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %s: %d parameters, %.3g configurations\n",
		kernel.Name, kernel.Space().NumParams(), kernel.Space().Size())

	src, err := autotune.NewProblemFromKernel(kernel, "Westmere", "gnu-4.4.7", 1)
	if err != nil {
		log.Fatal(err)
	}
	tgt, err := autotune.NewProblemFromKernel(kernel, "Sandybridge", "gnu-4.4.7", 1)
	if err != nil {
		log.Fatal(err)
	}

	out, err := autotune.Transfer(context.Background(), src, tgt, autotune.TransferOptions{Seed: 31})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross-machine correlation: spearman=%.2f\n", out.Spearman)
	sp := out.Speedups["RSb"]
	fmt.Printf("RSb: performance %.2fx, search time %.2fx\n\n", sp.Performance, sp.SearchTime)

	// Emit the best variant found on the target as C code.
	best, _, _ := out.RSb.Best()
	specs := kernel.SpecsFor(best.Config)
	variant, err := transform.Apply(kernel.Nests[0], specs[0])
	if err != nil {
		log.Fatal(err)
	}
	src2, err := codegen.Emit(variant, codegen.Options{
		ScalarReplace: specs[0].ScalarReplace,
		VectorHint:    specs[0].VectorHint,
		FuncName:      "syrk_best",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best variant (%s):\n\n", tgt.Space().String(best.Config))
	if len(src2) > 1200 {
		src2 = src2[:1200] + "\n  ... (truncated)\n"
	}
	fmt.Print(codegen.Preamble())
	fmt.Print(src2)
	_ = kernels.Binding{} // keep the kernels import for godoc discoverability
}
